package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/snapstab/snapstab/internal/core"
)

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	m := core.Message{
		Instance: "me/idl/pif",
		Kind:     "PIF",
		B:        core.Payload{Tag: "ASK", Num: -7},
		F:        core.Payload{Tag: "YES", Num: 1 << 40},
		State:    3,
		Echo:     4,
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip: got %v, want %v", got, m)
	}
}

// TestAppendEncodeReusesBuffer pins the zero-alloc contract of the hot
// send path: encoding into a pre-grown scratch buffer must produce the
// same bytes as Encode without allocating.
func TestAppendEncodeReusesBuffer(t *testing.T) {
	t.Parallel()
	m := core.Message{
		Instance: "pif", Kind: "PIF",
		B: core.Payload{Tag: "ASK", Num: 12}, F: core.Payload{Tag: "YES", Num: -3},
		State: 1, Echo: 2,
	}
	want, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf, err := AppendEncode(scratch, m)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(want) {
			t.Fatalf("AppendEncode = %x, want %x", buf, want)
		}
	})
	// One allocation per run is the string conversion in the comparison
	// above; AppendEncode itself must not allocate into a sized buffer.
	if allocs > 1 {
		t.Fatalf("AppendEncode allocated %.0f times per run into a sized buffer", allocs)
	}
	// Appending after a prefix must keep the prefix intact.
	prefixed, err := AppendEncode([]byte("hdr"), m)
	if err != nil {
		t.Fatal(err)
	}
	if string(prefixed[:3]) != "hdr" || string(prefixed[3:]) != string(want) {
		t.Fatal("AppendEncode clobbered the destination prefix")
	}
}

func TestRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(inst, kind, bTag, fTag string, bNum, fNum int64, state, echo uint8) bool {
		m := core.Message{
			Instance: inst, Kind: kind,
			B:     core.Payload{Tag: bTag, Num: bNum},
			F:     core.Payload{Tag: fTag, Num: fNum},
			State: state, Echo: echo,
		}
		data, err := Encode(m)
		if err != nil {
			// Over-length strings are the only legal encode error.
			return len(inst) > MaxStringLen || len(kind) > MaxStringLen ||
				len(bTag) > MaxStringLen || len(fTag) > MaxStringLen
		}
		got, err := Decode(data)
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	t.Parallel()
	cases := map[string][]byte{
		"empty":     {},
		"short":     {magic0, magic1},
		"bad magic": {0, 0, Version1, 0, 0, 0, 0, 0},
		"truncated": {magic0, magic1, Version1, 0, 0, 5, 'a'},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode succeeded on malformed input", name)
		}
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	t.Parallel()
	data, err := Encode(core.Message{Instance: "x", Kind: "PIF"})
	if err != nil {
		t.Fatal(err)
	}
	data[2] = 99
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	t.Parallel()
	data, err := Encode(core.Message{Instance: "x", Kind: "PIF"})
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, 0xFF)
	if _, err := Decode(data); !errors.Is(err, ErrBadLength) {
		t.Fatalf("got %v, want ErrBadLength", err)
	}
}

func TestEncodeRejectsOversizedStrings(t *testing.T) {
	t.Parallel()
	m := core.Message{Instance: strings.Repeat("x", MaxStringLen+1)}
	if _, err := Encode(m); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	t.Parallel()
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeReasonable(t *testing.T) {
	t.Parallel()
	data, err := Encode(core.Message{Instance: "pif", Kind: "PIF", State: 3, Echo: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 64 {
		t.Fatalf("minimal message encodes to %d bytes; format bloated", len(data))
	}
}

func BenchmarkEncode(b *testing.B) {
	m := core.Message{Instance: "me/idl/pif", Kind: "PIF", B: core.Payload{Tag: "ASK"}, State: 3}
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	m := core.Message{Instance: "me/idl/pif", Kind: "PIF", B: core.Payload{Tag: "ASK"}, State: 3}
	data, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeVersionSelection pins the upgrade-path contract: blob-free
// messages still encode as byte-identical version-1 datagrams (a
// pre-blob decoder keeps accepting legacy traffic), while any carried
// body switches the frame to version 2.
func TestEncodeVersionSelection(t *testing.T) {
	t.Parallel()
	legacy := core.Message{Instance: "pif", Kind: "PIF", B: core.Payload{Tag: "m", Num: 7}}
	data, err := Encode(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != Version1 {
		t.Fatalf("blob-free message encoded as version %d, want 1", data[2])
	}
	withBlob := legacy
	withBlob.F.Blob = []byte{1, 2, 3}
	data2, err := Encode(withBlob)
	if err != nil {
		t.Fatal(err)
	}
	if data2[2] != Version2 {
		t.Fatalf("blob message encoded as version %d, want 2", data2[2])
	}
}

func TestRoundTripBlobs(t *testing.T) {
	t.Parallel()
	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	m := core.Message{
		Instance: "typed/pif", Kind: "PIF",
		B:     core.Payload{Tag: "app", Blob: blob},
		F:     core.Payload{Tag: "app", Num: -1, Blob: []byte{}},
		State: 2, Echo: 1,
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("blob round trip: got %v, want %v", got, m)
	}
}

func TestEncodeRejectsOversizedBlob(t *testing.T) {
	t.Parallel()
	m := core.Message{Instance: "pif", B: core.Payload{Blob: make([]byte, MaxBlobLen+1)}}
	if _, err := Encode(m); err == nil {
		t.Fatal("oversized blob accepted")
	}
}

// TestDecodeRejectsOversizedBlobClaim pins totality against a length
// claim exceeding the bound: a v2 frame claiming a blob larger than
// MaxBlobLen must fail with ErrBadLength before any allocation or scan.
func TestDecodeRejectsOversizedBlobClaim(t *testing.T) {
	t.Parallel()
	// Hand-built v2 frame: empty instance/kind/bTag, zero bNum, then a
	// blob-length claim of MaxBlobLen+1 with no bytes behind it.
	frame := []byte{magic0, magic1, Version2, 0, 0, 0, 0, 0}
	frame = append(frame, make([]byte, 8)...) // bNum
	frame = binary.AppendUvarint(frame, uint64(MaxBlobLen+1))
	if _, err := Decode(frame); !errors.Is(err, ErrBadLength) {
		t.Fatalf("got %v, want ErrBadLength", err)
	}
}

func BenchmarkEncodeBlob4K(b *testing.B) {
	m := core.Message{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Tag: "app", Blob: make([]byte, 4096)}}
	buf := make([]byte, 0, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := AppendEncode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

func BenchmarkDecodeBlob4K(b *testing.B) {
	m := core.Message{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Tag: "app", Blob: make([]byte, 4096)}}
	data, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
