// Package wire encodes protocol messages for transmission over real
// networks (the UDP transport of cmd/snapnet) and for size accounting in
// the benchmarks.
//
// The format is deliberately simple and self-delimiting:
//
//	magic   [2]byte  0x53 0x4e ("SN")
//	version byte     1 or 2
//	state   byte
//	echo    byte
//	instance, kind, bTag, fTag: varint length + bytes
//	bNum, fNum: 8-byte little-endian two's complement
//	bBlob, fBlob (version 2 only): uvarint length + bytes,
//	    appended immediately after the corresponding num
//
// Version 1 is the legacy blob-free frame. Version 2 carries the opaque
// payload bodies of the typed application API. Encode emits the smallest
// version that represents the message — a blob-free message still
// produces a byte-identical v1 datagram, so mixed-revision deployments
// interoperate for legacy traffic — and Decode accepts both versions,
// decoding v1 datagrams to empty-blob messages.
//
// Decoding is total: any byte slice either decodes to a well-formed
// Message or returns an error — a malformed datagram can therefore be
// dropped at the transport boundary, which in the model is simply message
// loss (the protocols tolerate it by construction).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

// Format constants.
const (
	magic0, magic1 = 0x53, 0x4e
	// Version1 is the legacy blob-free frame format.
	Version1 = 1
	// Version2 adds a uvarint-length opaque blob after each payload's num.
	Version2 = 2
	// MaxStringLen bounds the variable-length string fields; longer
	// strings are rejected on both paths.
	MaxStringLen = 255
	// MaxBlobLen bounds each payload body (the authoritative constant
	// lives in core so the corruption policy can honor it). Two bodies
	// plus the string fields must fit one UDP datagram (65507 bytes of
	// payload), with generous headroom.
	MaxBlobLen = core.MaxBlobLen
)

// Errors returned by Decode.
var (
	ErrBadMagic  = errors.New("wire: bad magic")
	ErrBadLength = errors.New("wire: truncated or oversized message")
	ErrVersion   = errors.New("wire: unsupported version")
)

// Encode serializes m. It returns an error if a string field exceeds
// MaxStringLen or a blob exceeds MaxBlobLen.
func Encode(m core.Message) ([]byte, error) {
	buf := make([]byte, 0, 5+4+len(m.Instance)+len(m.Kind)+len(m.B.Tag)+len(m.F.Tag)+16+
		len(m.B.Blob)+len(m.F.Blob)+6)
	return AppendEncode(buf, m)
}

// AppendEncode serializes m into dst and returns the extended slice,
// reusing dst's capacity. Hot send paths (the UDP transport encodes one
// datagram per Send under its action mutex) call this with a per-sender
// scratch buffer so steady-state sending performs no heap allocation.
func AppendEncode(dst []byte, m core.Message) ([]byte, error) {
	for _, s := range []string{m.Instance, m.Kind, m.B.Tag, m.F.Tag} {
		if len(s) > MaxStringLen {
			return nil, fmt.Errorf("wire: field %q exceeds %d bytes", s[:16]+"...", MaxStringLen)
		}
	}
	if len(m.B.Blob) > MaxBlobLen || len(m.F.Blob) > MaxBlobLen {
		return nil, fmt.Errorf("wire: blob of %d/%d bytes exceeds %d",
			len(m.B.Blob), len(m.F.Blob), MaxBlobLen)
	}
	version := byte(Version1)
	if len(m.B.Blob) > 0 || len(m.F.Blob) > 0 {
		version = Version2
	}
	buf := append(dst, magic0, magic1, version, m.State, m.Echo)
	appendStr := func(s string) {
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	appendBlob := func(b []byte) {
		if version == Version2 {
			buf = binary.AppendUvarint(buf, uint64(len(b)))
			buf = append(buf, b...)
		}
	}
	appendStr(m.Instance)
	appendStr(m.Kind)
	appendStr(m.B.Tag)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.B.Num))
	appendBlob(m.B.Blob)
	appendStr(m.F.Tag)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.F.Num))
	appendBlob(m.F.Blob)
	return buf, nil
}

// Decode parses a datagram produced by Encode (either version).
func Decode(data []byte) (core.Message, error) {
	var m core.Message
	if len(data) < 5 {
		return m, ErrBadLength
	}
	if data[0] != magic0 || data[1] != magic1 {
		return m, ErrBadMagic
	}
	version := data[2]
	if version != Version1 && version != Version2 {
		return m, ErrVersion
	}
	m.State, m.Echo = data[3], data[4]
	rest := data[5:]

	readStr := func() (string, error) {
		if len(rest) < 1 {
			return "", ErrBadLength
		}
		n := int(rest[0])
		if len(rest) < 1+n {
			return "", ErrBadLength
		}
		s := string(rest[1 : 1+n])
		rest = rest[1+n:]
		return s, nil
	}
	readNum := func() (int64, error) {
		if len(rest) < 8 {
			return 0, ErrBadLength
		}
		v := int64(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		return v, nil
	}
	readBlob := func() ([]byte, error) {
		if version == Version1 {
			return nil, nil
		}
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > MaxBlobLen {
			return nil, ErrBadLength
		}
		rest = rest[used:]
		if uint64(len(rest)) < n {
			return nil, ErrBadLength
		}
		var b []byte
		if n > 0 {
			b = append(b, rest[:n]...)
		}
		rest = rest[n:]
		return b, nil
	}

	var err error
	if m.Instance, err = readStr(); err != nil {
		return core.Message{}, err
	}
	if m.Kind, err = readStr(); err != nil {
		return core.Message{}, err
	}
	if m.B.Tag, err = readStr(); err != nil {
		return core.Message{}, err
	}
	if m.B.Num, err = readNum(); err != nil {
		return core.Message{}, err
	}
	if m.B.Blob, err = readBlob(); err != nil {
		return core.Message{}, err
	}
	if m.F.Tag, err = readStr(); err != nil {
		return core.Message{}, err
	}
	if m.F.Num, err = readNum(); err != nil {
		return core.Message{}, err
	}
	if m.F.Blob, err = readBlob(); err != nil {
		return core.Message{}, err
	}
	if len(rest) != 0 {
		return core.Message{}, ErrBadLength
	}
	return m, nil
}
