package termdet

import (
	"testing"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// tokenApp is a toy diffusing computation: tokens hop between processes
// with a time-to-live; the computation terminates when every token's TTL
// is exhausted. Deficit-counting termination detection assumes the
// application's messages are RELIABLE (the classical assumption: a lost
// message leaves the global deficit nonzero forever), so the app performs
// its own retransmit-until-ack transfer with idempotent receipt — which
// also makes it a realistic workload.
type tokenApp struct {
	inst    string
	self    core.ProcID
	n       int
	pending []int // TTLs of tokens held locally, waiting to be forwarded
	out     *transfer
	nextID  int64
	seen    map[int64]bool
	sent    int64
	recv    int64
}

// transfer is an unacknowledged outgoing token.
type transfer struct {
	id  int64
	ttl int
	to  core.ProcID
}

func (a *tokenApp) Instance() string { return a.inst }

// Passive: no tokens waiting and no transfer in flight.
func (a *tokenApp) Passive() bool { return len(a.pending) == 0 && a.out == nil }

func (a *tokenApp) Counts() (int64, int64) { return a.sent, a.recv }

func (a *tokenApp) Step(env core.Env) bool {
	if a.out != nil {
		// Retransmit until acknowledged (loss-tolerant transfer).
		env.Send(a.out.to, core.Message{Instance: a.inst, Kind: "TOKEN",
			B: core.Payload{Num: a.out.id}, F: core.Payload{Num: int64(a.out.ttl)}})
		return true
	}
	if len(a.pending) == 0 {
		return false
	}
	ttl := a.pending[0]
	a.pending = a.pending[1:]
	if ttl <= 0 {
		return true // token dies here
	}
	a.nextID++
	id := int64(a.self)<<32 | a.nextID
	a.out = &transfer{id: id, ttl: ttl - 1, to: core.ProcID((int(a.self) + 1) % a.n)}
	a.sent++
	env.Send(a.out.to, core.Message{Instance: a.inst, Kind: "TOKEN",
		B: core.Payload{Num: id}, F: core.Payload{Num: int64(a.out.ttl)}})
	return true
}

func (a *tokenApp) Deliver(env core.Env, from core.ProcID, m core.Message) {
	switch m.Kind {
	case "TOKEN":
		// Acknowledge every copy; count and enqueue only the first.
		env.Send(from, core.Message{Instance: a.inst, Kind: "TOKEN-ACK", B: core.Payload{Num: m.B.Num}})
		if a.seen == nil {
			a.seen = make(map[int64]bool)
		}
		if !a.seen[m.B.Num] {
			a.seen[m.B.Num] = true
			a.recv++
			a.pending = append(a.pending, int(m.F.Num))
		}
	case "TOKEN-ACK":
		if a.out != nil && a.out.id == m.B.Num {
			a.out = nil
		}
	}
}

// build assembles n processes each running a token app plus a detector.
func build(t *testing.T, n int, opts ...sim.Option) (*sim.Network, []*Detector, []*tokenApp) {
	t.Helper()
	detectors := make([]*Detector, n)
	apps := make([]*tokenApp, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		apps[i] = &tokenApp{inst: "app", self: core.ProcID(i), n: n}
		detectors[i] = New("td", core.ProcID(i), n, apps[i])
		stacks[i] = append(core.Stack{apps[i]}, detectors[i].Machines()...)
	}
	return sim.New(stacks, opts...), detectors, apps
}

// appQuiescent reports whether the application has globally terminated:
// no pending tokens and no app messages in transit.
func appQuiescent(net *sim.Network, apps []*tokenApp) bool {
	for _, a := range apps {
		if !a.Passive() {
			return false
		}
	}
	for _, k := range net.Links() {
		if k.Instance != "app" {
			continue
		}
		if net.Link(k).Len() > 0 {
			return false
		}
	}
	return true
}

func TestDetectsTerminationOfIdleApp(t *testing.T) {
	t.Parallel()
	net, detectors, _ := build(t, 3, sim.WithSeed(3))
	if !detectors[0].Invoke(net.Env(0)) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(detectors[0].Done, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if !detectors[0].Terminated {
		t.Fatal("idle application not declared terminated")
	}
	if detectors[0].Waves < 2 {
		t.Fatalf("declared after %d waves, want >= 2 (double-wave criterion)", detectors[0].Waves)
	}
}

func TestDeclaresOnlyWhenActuallyTerminated(t *testing.T) {
	t.Parallel()
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		net, detectors, apps := build(t, 3, sim.WithSeed(seed))
		// Seed the computation with tokens that hop for a while.
		apps[0].pending = []int{8, 5}
		apps[1].pending = []int{6}

		if !detectors[1].Invoke(net.Env(1)) {
			t.Fatal("Invoke rejected")
		}
		declaredEarly := false
		err := net.RunUntil(func() bool {
			if detectors[1].Done() {
				if !appQuiescent(net, apps) {
					declaredEarly = true
				}
				return true
			}
			return false
		}, 10_000_000)
		if err != nil {
			t.Fatalf("trial %d: detection never completed: %v", trial, err)
		}
		if declaredEarly {
			t.Fatalf("trial %d: termination declared while the application was still active", trial)
		}
		if !detectors[1].Terminated {
			t.Fatalf("trial %d: detection completed without a verdict", trial)
		}
	}
}

func TestCorruptedDetectorStillSound(t *testing.T) {
	t.Parallel()
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 100)
		net, detectors, apps := build(t, 3, sim.WithSeed(seed), sim.WithLossRate(0.1))
		// Corrupt detector machines and detector channels; the app keeps
		// honest counters (it is the observed application, not protocol).
		r := rng.New(rng.Mix(seed, 13))
		for _, d := range detectors {
			d.Corrupt(r)
			d.PIF.Corrupt(r)
		}
		config.FillChannels(net, r, config.PIFSpecs("td/pif", detectors[0].PIF.FlagTop()), config.Options{})
		apps[2].pending = []int{10}

		requested := false
		declaredEarly := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = detectors[0].Invoke(net.Env(0))
				return false
			}
			if detectors[0].Done() && detectors[0].Terminated {
				if !appQuiescent(net, apps) {
					declaredEarly = true
				}
				return true
			}
			return false
		}, 20_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if declaredEarly {
			t.Fatalf("trial %d: corrupted start led to a premature declaration", trial)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][2]int64{{0, 0}, {1, 0}, {0, 1}, {12345, 67890}, {1<<countBits - 1, 1<<countBits - 1}}
	for _, c := range cases {
		s, r := unpack(pack(c[0], c[1]))
		if s != c[0] || r != c[1] {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", c[0], c[1], s, r)
		}
	}
}

func TestGarbageProbeAnsweredAsActive(t *testing.T) {
	t.Parallel()
	d := New("td", 0, 2, nil)
	if got := d.onProbe(nil, 1, core.Payload{Tag: "garbage"}); got.Tag != TagActive {
		t.Fatalf("garbage probe answered %s, want %s (the safe direction)", got.Tag, TagActive)
	}
}

func TestGarbageFeedbackCountsAsActivity(t *testing.T) {
	t.Parallel()
	d := New("td", 0, 2, nil)
	d.cur = summary{allPassive: true}
	d.onReply(nil, 1, core.Payload{Tag: "garbage"})
	if d.cur.allPassive {
		t.Fatal("garbage feedback left the wave all-passive")
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	net, detectors, _ := build(t, 2)
	if !detectors[0].Invoke(net.Env(0)) {
		t.Fatal("first Invoke rejected")
	}
	if detectors[0].Invoke(net.Env(0)) {
		t.Fatal("second Invoke accepted while busy")
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New with n=1 did not panic")
		}
	}()
	New("td", 0, 1, nil)
}
