// Package termdet implements snap-stabilizing termination detection, the
// last application the paper names for PIF ("Reset, Snapshot, Leader
// Election, and Termination Detection", §4.1).
//
// The detector observes an underlying application whose processes are
// active or passive and exchange application messages. It repeatedly runs
// PIF waves collecting, from every process, the triple
//
//	(passive?, messages sent, messages received)
//
// and declares termination after two consecutive waves in which every
// process was passive, the global send and receive counts were equal, and
// nothing changed between the waves — the classical double-wave criterion
// (Dijkstra–Feijen–van Gasteren style): a first wave alone can be fooled
// by an in-flight message re-activating an already-probed process, but
// any such activity changes a counter and invalidates the second wave.
//
// Snap-stabilization is inherited from PIF: every wave's collected values
// are genuinely produced for that wave (Theorem 2), and the start action
// discards any (possibly corrupted) previous-wave summary, so a started
// detection always rests on at least two complete genuine waves. The
// detector declares only when the application has terminated; it runs
// forever when the application does not terminate — that conditional
// liveness is the specification of the problem.
package termdet

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// TagProbe is the broadcast payload tag of detection waves.
const TagProbe = "TD"

// Reply payload tags: the responder's activity status travels in the tag,
// the packed counters in Num.
const (
	TagPassive = "TD-PASSIVE"
	TagActive  = "TD-ACTIVE"
)

// countBits is the width of each packed counter; counts must stay below
// 2^countBits.
const countBits = 30

// App exposes the underlying application at one process to the detector.
// Methods are called inside atomic actions.
type App interface {
	// Passive reports whether the process has no pending work.
	Passive() bool
	// Counts returns the number of application messages this process has
	// sent and received so far. Each must stay below 2^30.
	Counts() (sent, recv int64)
}

// summary aggregates one complete wave.
type summary struct {
	allPassive bool
	sent, recv int64
	replies    int
}

// Detector is one process's instance of the termination detector.
type Detector struct {
	inst string
	self core.ProcID
	n    int

	// Request drives detections (input/output variable).
	Request core.ReqState
	// Terminated is the output verdict of the last completed detection.
	Terminated bool
	// Waves counts the waves of the current detection (diagnostic).
	Waves int

	// App is the local application adapter (required at every process).
	App App

	cur      summary
	prev     summary
	havePrev bool

	// PIF is the child broadcast machine (instance inst+"/pif").
	PIF *pif.PIF
}

var (
	_ core.Machine     = (*Detector)(nil)
	_ core.Snapshotter = (*Detector)(nil)
	_ core.Corruptible = (*Detector)(nil)
)

// New returns a detector for process self.
func New(inst string, self core.ProcID, n int, app App, pifOpts ...pif.Option) *Detector {
	if n < 2 {
		panic(fmt.Sprintf("termdet: need n >= 2, got %d", n))
	}
	d := &Detector{
		inst:    inst,
		self:    self,
		n:       n,
		App:     app,
		Request: core.Done,
	}
	d.PIF = pif.New(inst+"/pif", self, n, pif.Callbacks{
		OnBroadcast: d.onProbe,
		OnFeedback:  d.onReply,
	}, pifOpts...)
	return d
}

// Machines returns the stack fragment in text order.
func (d *Detector) Machines() core.Stack { return core.Stack{d, d.PIF} }

// Instance returns the protocol instance ID.
func (d *Detector) Instance() string { return d.inst }

// Invoke requests a detection; rejected while one is pending or running.
func (d *Detector) Invoke(env core.Env) bool {
	if d.Request != core.Done {
		return false
	}
	d.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: d.inst})
	return true
}

// Done reports whether no detection is requested or in progress.
func (d *Detector) Done() bool { return d.Request == core.Done }

// pack encodes (sent, recv) into one payload number.
func pack(sent, recv int64) int64 { return sent<<countBits | recv }

// unpack reverses pack.
func unpack(num int64) (sent, recv int64) {
	return num >> countBits, num & (1<<countBits - 1)
}

// onProbe answers a detection probe with this process's local report.
func (d *Detector) onProbe(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
	if b.Tag != TagProbe || d.App == nil {
		return core.Payload{Tag: TagActive} // garbage probe: safe answer
	}
	sent, recv := d.App.Counts()
	tag := TagActive
	if d.App.Passive() {
		tag = TagPassive
	}
	return core.Payload{Tag: tag, Num: pack(sent, recv)}
}

// onReply folds one feedback into the current wave summary.
func (d *Detector) onReply(_ core.Env, _ core.ProcID, f core.Payload) {
	switch f.Tag {
	case TagPassive:
		// keep allPassive as is
	case TagActive:
		d.cur.allPassive = false
	default:
		// Garbage feedback can only occur in non-started computations;
		// treat as activity, the safe direction.
		d.cur.allPassive = false
		return
	}
	sent, recv := unpack(f.Num)
	d.cur.sent += sent
	d.cur.recv += recv
	d.cur.replies++
}

// startWave resets the wave accumulator with the local report and launches
// the probe.
func (d *Detector) startWave() {
	d.cur = summary{allPassive: true}
	if d.App != nil {
		sent, recv := d.App.Counts()
		d.cur.sent += sent
		d.cur.recv += recv
		d.cur.allPassive = d.App.Passive()
	}
	d.Waves++
	d.PIF.Reset(core.Payload{Tag: TagProbe, Num: int64(d.Waves)})
}

// Step runs the internal actions in text order.
func (d *Detector) Step(env core.Env) bool {
	fired := false

	// A1: start — discard any (corrupted) previous summary and wave.
	if d.Request == core.Wait {
		d.Request = core.In
		d.Terminated = false
		d.havePrev = false
		d.Waves = 0
		d.startWave()
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: d.inst})
		fired = true
	}

	// A2: a wave completed — decide or wave again.
	if d.Request == core.In && d.PIF.Done() {
		complete := d.cur.replies == d.n-1
		quiet := complete && d.cur.allPassive && d.cur.sent == d.cur.recv
		if quiet && d.havePrev && d.cur == d.prev {
			d.Terminated = true
			d.Request = core.Done
			env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: d.inst,
				Note: fmt.Sprintf("terminated after %d waves", d.Waves)})
		} else {
			d.prev = d.cur
			d.havePrev = quiet
			d.startWave()
		}
		fired = true
	}

	return fired
}

// Deliver consumes initial-configuration garbage addressed to the detector
// instance itself.
func (d *Detector) Deliver(core.Env, core.ProcID, core.Message) {}

// AppendState appends a canonical encoding of the machine state.
func (d *Detector) AppendState(dst []byte) []byte {
	dst = append(dst, 'T', byte(d.Request))
	flags := byte(0)
	if d.Terminated {
		flags |= 1
	}
	if d.havePrev {
		flags |= 2
	}
	if d.cur.allPassive {
		flags |= 4
	}
	dst = append(dst, flags)
	for _, v := range []int64{int64(d.Waves), d.cur.sent, d.cur.recv, d.prev.sent, d.prev.recv} {
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(v>>shift))
		}
	}
	return dst
}

// Corrupt overwrites every protocol variable with random domain values
// (the underlying application is outside the protocol and untouched).
func (d *Detector) Corrupt(r core.Rand) {
	d.Request = core.ReqState(r.Intn(core.NumReqStates))
	d.Terminated = r.Bool()
	d.havePrev = r.Bool()
	d.Waves = r.Intn(100)
	d.cur = summary{allPassive: r.Bool(), sent: int64(r.Intn(64)), recv: int64(r.Intn(64)), replies: r.Intn(d.n)}
	d.prev = summary{allPassive: r.Bool(), sent: int64(r.Intn(64)), recv: int64(r.Intn(64)), replies: r.Intn(d.n)}
}
