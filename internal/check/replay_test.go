package check

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/sim"
)

// TestCounterexamplesReplayOnRealSimulator closes the loop between the
// model checker and the shipped system: for every unsafe flag domain, the
// machine-found counter-example is replayed step by step on the actual
// simulator with actual protocol machines and actual channels — and the
// stale-feedback decision occurs exactly as predicted. A counter-example
// that failed to reproduce would mean the checker's abstraction has
// drifted from the real semantics.
func TestCounterexamplesReplayOnRealSimulator(t *testing.T) {
	t.Parallel()
	for _, top := range []int{1, 2, 3} {
		top := top
		res, err := Safety(Options{FlagTop: top, TraceViolation: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil || res.Violation.Init == nil {
			t.Fatalf("FlagTop=%d: no structured counter-example", top)
		}
		if !replayAttack(t, top, res.Violation.Init, res.Violation.Ops) {
			t.Fatalf("FlagTop=%d: counter-example did not reproduce on the real simulator\nops: %v\ninit: %+v",
				top, res.Violation.Ops, res.Violation.Init)
		}
	}
}

// replayAttack executes a counter-example on a fresh sim.Network and
// reports whether the initiator accepted stale feedback during its started
// computation.
func replayAttack(t *testing.T, top int, init *InitConf, ops []string) bool {
	t.Helper()

	token := core.Payload{Tag: "fresh-token"}
	freshAck := core.Payload{Tag: "fresh-ack"}
	stale := core.Payload{Tag: "stale"}

	violated := false
	machines := make([]*pif.PIF, 2)
	machines[0] = pif.New("pif", 0, 2, pif.Callbacks{
		OnBroadcast: func(core.Env, core.ProcID, core.Payload) core.Payload { return stale },
		OnFeedback: func(_ core.Env, _ core.ProcID, f core.Payload) {
			if machines[0].Request == core.In && !f.Equal(freshAck) {
				violated = true
			}
		},
	}, pif.WithFlagTop(top))
	machines[1] = pif.New("pif", 1, 2, pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			if b.Equal(token) {
				return freshAck
			}
			return stale
		},
	}, pif.WithFlagTop(top))

	net := sim.New([]core.Stack{{machines[0]}, {machines[1]}})

	// Install the counter-example's initial configuration. The checker's
	// initial set fixes PReq = Wait with the fresh broadcast pending; the
	// rest is arbitrary.
	p, q := machines[0], machines[1]
	if !p.Invoke(net.Env(0), token) {
		t.Fatal("victim rejected the request")
	}
	if init.PReq != uint8(core.Wait) {
		t.Fatalf("counter-example initial PReq = %d, expected Wait", init.PReq)
	}
	p.State[1], p.Neig[1] = init.PS, init.PN
	p.FMes[1] = stale
	q.Request = core.ReqState(init.QReq)
	q.State[0], q.Neig[0] = init.QS, init.QN
	q.BMes, q.FMes[0] = stale, stale

	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	if init.PQ != nil {
		if err := net.Link(kPQ).Preload([]core.Message{{
			Instance: "pif", Kind: pif.Kind, State: init.PQ.S, Echo: init.PQ.E, B: stale, F: stale,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if init.QP != nil {
		if err := net.Link(kQP).Preload([]core.Message{{
			Instance: "pif", Kind: pif.Kind, State: init.QP.S, Echo: init.QP.E, B: stale, F: stale,
		}}); err != nil {
			t.Fatal(err)
		}
	}

	// Apply the transition sequence.
	for _, op := range ops {
		switch op {
		case "activate-p":
			net.Activate(0)
		case "activate-q":
			net.Activate(1)
		case "ext-request":
			if q.Request == core.Done {
				q.Reset(stale)
			}
		case "deliver-p->q":
			net.Deliver(kPQ)
		case "deliver-q->p":
			net.Deliver(kQP)
		case "lose-p->q":
			net.Lose(kPQ)
		case "lose-q->p":
			net.Lose(kQP)
		default:
			t.Fatalf("unknown op %q", op)
		}
	}
	return violated
}

// TestSafeDomainHasNoReplayableAttack is the negative control for the
// replay harness itself: feeding it the Figure 1 ops against the paper's
// FlagTop = 4 must NOT produce a violation (otherwise the harness, not the
// protocol, is broken).
func TestSafeDomainHasNoReplayableAttack(t *testing.T) {
	t.Parallel()
	// A hand-built aggressive sequence in the spirit of Figure 1.
	init := &InitConf{
		PReq: uint8(core.Wait), PS: 3, PN: 3,
		QReq: uint8(core.In), QS: 1, QN: 1,
		PQ: &MsgConf{S: 2, E: 0},
		QP: &MsgConf{S: 1, E: 0},
	}
	ops := []string{
		"activate-p", "deliver-q->p", "activate-q", "deliver-q->p",
		"deliver-p->q", "deliver-q->p", "activate-p", "deliver-p->q",
		"deliver-q->p", "activate-p",
	}
	if replayAttack(t, 4, init, ops) {
		t.Fatal("the safe domain was violated by a replay; harness or protocol broken")
	}
}
