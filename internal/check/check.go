// Package check is an explicit-state model checker for the two-process
// instance of Protocol PIF. It complements the randomized adversarial
// tests with exhaustive verification on n = 2 — the per-neighbour
// handshake of Algorithm 1 is independent per pair, so the two-process
// system is the correctness kernel of the protocol (Lemma 4 is stated for
// one pair).
//
// Two analyses are offered, on two sound abstractions:
//
//   - Safety: from EVERY abstract initial configuration in which the
//     initiator p has a pending request (arbitrary flags, arbitrary peer
//     state, arbitrary channel garbage), no execution lets p's started
//     computation accept a feedback that was not causally generated for
//     its broadcast. Payloads are abstracted to one freshness bit with
//     exact propagation: "fresh" feedback exists only after the peer's
//     receive-brd of the fresh broadcast — so the check subsumes both the
//     Correctness clause (the peer received m) and the Decision clause
//     (only genuine acknowledgments are used) of Specification 1 in their
//     causal form (Lemmas 4–6).
//
//   - Termination: on the payload-free abstraction with both processes
//     cycling (external re-requests allowed at both), every reachable
//     configuration can reach the termination of each process's current
//     computation. On a finite transition system, reachability of the
//     target from everywhere implies almost-sure termination under any
//     memoryless fair scheduler — the paper's fairness assumptions.
//
// The checker runs the REAL protocol machines (internal/pif) inside a
// packed-state exploration loop: configurations are densely encoded
// integers, decoded into reusable machine instances, stepped, and
// re-encoded. There is no second implementation of the protocol to drift
// from the shipped one, and the flag-domain ablation (experiment E9) is a
// one-parameter change.
package check

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// Fixed abstract payloads. Fresh values are those causally produced inside
// the checked computation; everything else is stale.
var (
	freshB = core.Payload{Tag: "m!"}
	freshF = core.Payload{Tag: "ack!"}
	staleB = core.Payload{Tag: "stale"}
	staleF = core.Payload{Tag: "stale"}
)

// Options selects the checked system.
type Options struct {
	// FlagTop is the top of the handshake flag domain. 4 is the paper's
	// protocol; lower values are the E9 ablation and are expected to
	// fail. Default 4.
	FlagTop int
	// MaxStates aborts the analysis if the abstract state space exceeds
	// this bound (default 200M).
	MaxStates uint64
	// TraceViolation records parent pointers so a counter-example trace
	// can be reconstructed. Costs memory proportional to the explored
	// set; intended for the small ablated domains.
	TraceViolation bool
}

func (o Options) withDefaults() Options {
	if o.FlagTop == 0 {
		o.FlagTop = 4
	}
	if o.MaxStates == 0 {
		o.MaxStates = 200_000_000
	}
	return o
}

// Result reports a safety analysis.
type Result struct {
	// Exhaustive is true when the full reachable space was explored.
	Exhaustive bool
	// Explored counts distinct reachable configurations.
	Explored int
	// InitialConfigs counts the enumerated initial configurations.
	InitialConfigs int
	// Violation describes the first violation found, nil if none.
	Violation *ViolationInfo
}

// ViolationInfo describes a counter-example.
type ViolationInfo struct {
	// Description says what went wrong.
	Description string
	// Config renders the violating configuration.
	Config string
	// Trace lists the steps from an initial configuration, when parent
	// tracking was enabled.
	Trace []string
	// Ops is the machine-readable transition sequence from Init to the
	// violation (names from opNames), when parent tracking was enabled.
	// Replaying Ops from Init on the real simulator reproduces the attack
	// — the tests do exactly that.
	Ops []string
	// Init is the structured initial configuration of the counter-example,
	// when parent tracking was enabled.
	Init *InitConf
}

// InitConf is a structured abstract initial configuration, exported so
// counter-examples can be replayed outside the checker.
type InitConf struct {
	// PReq/PS/PN are the initiator's Request, State[q], NeigState[q].
	PReq, PS, PN uint8
	// QReq/QS/QN are the peer's Request, State[p], NeigState[p].
	QReq, QS, QN uint8
	// PQ and QP are the single channel slots (nil = empty). Initial
	// messages are stale by definition.
	PQ, QP *MsgConf
}

// MsgConf is one in-transit message of a counter-example configuration.
type MsgConf struct {
	// S and E are the flag and echo fields.
	S, E uint8
}

// The seven transition kinds.
const (
	opActP   = iota // activate the initiator p
	opActQ          // activate the peer q
	opExtQ          // external re-request at q (and at p in termination mode)
	opDelPQ         // deliver the head of channel p->q
	opDelQP         // deliver the head of channel q->p
	opLosePQ        // lose the head of channel p->q
	opLoseQP        // lose the head of channel q->p
	numOps
)

var opNames = [numOps]string{"activate-p", "activate-q", "ext-request", "deliver-p->q", "deliver-q->p", "lose-p->q", "lose-q->p"}

// conf is a decoded configuration. Channels are capacity-1 (the paper's
// regime): a slot is either empty or holds one message code.
type conf struct {
	pReq, pS, pN uint8
	qReq, qS, qN uint8
	qF           bool // q's F-Mes[p] is fresh
	pqFull       bool
	pqS, pqE     uint8
	pqB          bool // in-transit p->q message carries the fresh broadcast
	qpFull       bool
	qpS, qpE     uint8
	qpF          bool // in-transit q->p message carries fresh feedback
}

// explorer holds the reusable machinery for one analysis.
type explorer struct {
	top    uint8
	vals   uint64 // top+1, the flag-domain cardinality
	safety bool   // safety mode (freshness bits, p absorbing at Done)

	pCard, qCard, chCard uint64
	total                uint64

	p, q      *pif.PIF
	cur       conf
	violated  bool
	violation string
}

func newExplorer(top int, safety bool) *explorer {
	e := &explorer{top: uint8(top), vals: uint64(top + 1), safety: safety}
	e.pCard = 3 * e.vals * e.vals
	e.qCard = 3 * e.vals * e.vals
	msgCard := e.vals * e.vals
	if safety {
		e.qCard *= 2 // q's F freshness bit
		msgCard *= 2 // per-direction freshness bit
	}
	e.chCard = 1 + msgCard
	e.total = e.pCard * e.qCard * e.chCard * e.chCard

	e.p = pif.New("pif", 0, 2, pif.Callbacks{
		OnBroadcast: func(core.Env, core.ProcID, core.Payload) core.Payload { return staleF },
		OnFeedback: func(_ core.Env, _ core.ProcID, f core.Payload) {
			if e.safety && e.p.Request == core.In && !f.Equal(freshF) {
				e.violated = true
				e.violation = fmt.Sprintf("started computation accepted stale feedback %v", f)
			}
		},
	}, pif.WithFlagTop(top))
	e.q = pif.New("pif", 1, 2, pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			if b.Equal(freshB) {
				return freshF
			}
			return staleF
		},
	}, pif.WithFlagTop(top))
	return e
}

// encode packs the working configuration into a dense index.
func (e *explorer) encode(c *conf) uint64 {
	v := e.vals
	pIdx := (uint64(c.pReq)*v+uint64(c.pS))*v + uint64(c.pN)
	qIdx := (uint64(c.qReq)*v+uint64(c.qS))*v + uint64(c.qN)
	if e.safety {
		qIdx = qIdx*2 + b2u(c.qF)
	}
	var pqIdx, qpIdx uint64
	if c.pqFull {
		m := uint64(c.pqS)*v + uint64(c.pqE)
		if e.safety {
			m = m*2 + b2u(c.pqB)
		}
		pqIdx = 1 + m
	}
	if c.qpFull {
		m := uint64(c.qpS)*v + uint64(c.qpE)
		if e.safety {
			m = m*2 + b2u(c.qpF)
		}
		qpIdx = 1 + m
	}
	return ((pIdx*e.qCard+qIdx)*e.chCard+pqIdx)*e.chCard + qpIdx
}

// decode unpacks index idx into the working configuration.
func (e *explorer) decode(idx uint64, c *conf) {
	v := e.vals
	qpIdx := idx % e.chCard
	idx /= e.chCard
	pqIdx := idx % e.chCard
	idx /= e.chCard
	qIdx := idx % e.qCard
	pIdx := idx / e.qCard

	c.pN = uint8(pIdx % v)
	pIdx /= v
	c.pS = uint8(pIdx % v)
	c.pReq = uint8(pIdx / v)

	if e.safety {
		c.qF = qIdx&1 == 1
		qIdx /= 2
	} else {
		c.qF = false
	}
	c.qN = uint8(qIdx % v)
	qIdx /= v
	c.qS = uint8(qIdx % v)
	c.qReq = uint8(qIdx / v)

	c.pqFull = pqIdx != 0
	c.pqB = false
	if c.pqFull {
		m := pqIdx - 1
		if e.safety {
			c.pqB = m&1 == 1
			m /= 2
		}
		c.pqE = uint8(m % v)
		c.pqS = uint8(m / v)
	} else {
		c.pqS, c.pqE = 0, 0
	}
	c.qpFull = qpIdx != 0
	c.qpF = false
	if c.qpFull {
		m := qpIdx - 1
		if e.safety {
			c.qpF = m&1 == 1
			m /= 2
		}
		c.qpE = uint8(m % v)
		c.qpS = uint8(m / v)
	} else {
		c.qpS, c.qpE = 0, 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// restore loads the working configuration into the machines.
func (e *explorer) restore(c *conf) {
	p, q := e.p, e.q
	p.Request = core.ReqState(c.pReq)
	p.State[1] = c.pS
	p.Neig[1] = c.pN
	p.BMes = freshB
	p.FMes[1] = staleF
	q.Request = core.ReqState(c.qReq)
	q.State[0] = c.qS
	q.Neig[0] = c.qN
	q.BMes = staleB
	if c.qF {
		q.FMes[0] = freshF
	} else {
		q.FMes[0] = staleF
	}
}

// capture reads the machines back into the working configuration.
func (e *explorer) capture(c *conf) {
	p, q := e.p, e.q
	c.pReq = uint8(p.Request)
	c.pS = p.State[1]
	c.pN = p.Neig[1]
	c.qReq = uint8(q.Request)
	c.qS = q.State[0]
	c.qN = q.Neig[0]
	c.qF = q.FMes[0].Equal(freshF)
}

// chanEnv adapts the single-slot channels to core.Env for the machines.
type chanEnv struct {
	e    *explorer
	self core.ProcID
}

func (v chanEnv) Self() core.ProcID { return v.self }
func (v chanEnv) N() int            { return 2 }
func (v chanEnv) Emit(core.Event)   {}
func (v chanEnv) Send(to core.ProcID, m core.Message) {
	c := &v.e.cur
	if v.self == 0 {
		if !c.pqFull {
			c.pqFull = true
			c.pqS, c.pqE = m.State, m.Echo
			c.pqB = m.B.Equal(freshB)
		}
		return
	}
	if !c.qpFull {
		c.qpFull = true
		c.qpS, c.qpE = m.State, m.Echo
		c.qpF = m.F.Equal(freshF)
	}
}

// apply executes one transition on the working configuration. It reports
// whether the transition is enabled (disabled transitions leave the
// configuration unchanged and yield no successor).
func (e *explorer) apply(op int) bool {
	c := &e.cur
	switch op {
	case opActP:
		if e.safety && c.pReq == uint8(core.Done) {
			return false // absorbing: the checked computation ended
		}
		e.restore(c)
		fired := e.p.Step(chanEnv{e: e, self: 0})
		e.capture(c)
		return fired
	case opActQ:
		e.restore(c)
		fired := e.q.Step(chanEnv{e: e, self: 1})
		e.capture(c)
		return fired
	case opExtQ:
		if c.qReq == uint8(core.Done) {
			c.qReq = uint8(core.Wait)
			return true
		}
		if !e.safety && c.pReq == uint8(core.Done) {
			// Termination mode: p cycles too.
			c.pReq = uint8(core.Wait)
			return true
		}
		return false
	case opDelPQ:
		if !c.pqFull {
			return false
		}
		m := core.Message{Instance: "pif", Kind: pif.Kind, State: c.pqS, Echo: c.pqE, B: staleB, F: staleF}
		if c.pqB {
			m.B = freshB
		}
		c.pqFull, c.pqS, c.pqE, c.pqB = false, 0, 0, false
		e.restore(c)
		e.q.Deliver(chanEnv{e: e, self: 1}, 0, m)
		e.capture(c)
		return true
	case opDelQP:
		if !c.qpFull {
			return false
		}
		m := core.Message{Instance: "pif", Kind: pif.Kind, State: c.qpS, Echo: c.qpE, B: staleB, F: staleF}
		if c.qpF {
			m.F = freshF
		}
		c.qpFull, c.qpS, c.qpE, c.qpF = false, 0, 0, false
		e.restore(c)
		e.p.Deliver(chanEnv{e: e, self: 0}, 1, m)
		e.capture(c)
		return true
	case opLosePQ:
		if !c.pqFull {
			return false
		}
		c.pqFull, c.pqS, c.pqE, c.pqB = false, 0, 0, false
		return true
	case opLoseQP:
		if !c.qpFull {
			return false
		}
		c.qpFull, c.qpS, c.qpE, c.qpF = false, 0, 0, false
		return true
	}
	return false
}

// render prints a configuration for humans.
func (e *explorer) render(c *conf) string {
	pq := "∅"
	if c.pqFull {
		pq = fmt.Sprintf("<s=%d e=%d B=%v>", c.pqS, c.pqE, c.pqB)
	}
	qp := "∅"
	if c.qpFull {
		qp = fmt.Sprintf("<s=%d e=%d F=%v>", c.qpS, c.qpE, c.qpF)
	}
	return fmt.Sprintf("p{Req=%v S=%d N=%d} q{Req=%v S=%d N=%d F=%v} p->q:%s q->p:%s",
		core.ReqState(c.pReq), c.pS, c.pN, core.ReqState(c.qReq), c.qS, c.qN, c.qF, pq, qp)
}
