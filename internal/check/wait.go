package check

import "time"

// Eventually polls cond every interval until it returns true, giving up
// after timeout. It reports whether cond succeeded.
//
// The budget is counted in sleep steps rather than read off the wall
// clock, so tests built on it never call time.Now: on a loaded machine
// the effective deadline stretches with the actual sleep durations,
// which is the tolerant direction for a liveness wait.
func Eventually(timeout, interval time.Duration, cond func() bool) bool {
	if interval <= 0 {
		interval = time.Millisecond
	}
	steps := int(timeout / interval)
	if steps < 1 {
		steps = 1
	}
	for i := 0; ; i++ {
		if cond() {
			return true
		}
		if i >= steps {
			return false
		}
		time.Sleep(interval)
	}
}
