package check

import (
	"fmt"
)

// bitset is a fixed-size set of uint64-indexed bits.
type bitset []uint64

func newBitset(n uint64) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i uint64) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i uint64)      { b[i/64] |= 1 << (i % 64) }

// Safety runs the exhaustive safety analysis: breadth-first exploration of
// every abstract initial configuration with a pending request at p,
// checking that the started computation never accepts stale feedback.
func Safety(opt Options) (Result, error) {
	opt = opt.withDefaults()
	e := newExplorer(opt.FlagTop, true)
	if e.total > opt.MaxStates {
		return Result{}, fmt.Errorf("check: abstract space has %d states, above the %d limit", e.total, opt.MaxStates)
	}

	visited := newBitset(e.total)
	var queue []uint64
	var parents map[uint64]parentEdge
	if opt.TraceViolation {
		parents = make(map[uint64]parentEdge)
	}

	res := Result{}

	// Enumerate the initial configurations: p.Request = Wait (the request
	// is pending), every flag arbitrary, q arbitrary with stale F-Mes,
	// channels empty or holding one arbitrary stale message.
	var c conf
	vals := int(e.vals)
	for pS := 0; pS < vals; pS++ {
		for pN := 0; pN < vals; pN++ {
			for qReq := 0; qReq < 3; qReq++ {
				for qS := 0; qS < vals; qS++ {
					for qN := 0; qN < vals; qN++ {
						for pqIdx := 0; pqIdx <= vals*vals; pqIdx++ {
							for qpIdx := 0; qpIdx <= vals*vals; qpIdx++ {
								c = conf{
									pReq: 0 /* Wait */, pS: uint8(pS), pN: uint8(pN),
									qReq: uint8(qReq), qS: uint8(qS), qN: uint8(qN),
									qF: false,
								}
								if pqIdx > 0 {
									c.pqFull = true
									c.pqS = uint8((pqIdx - 1) / vals)
									c.pqE = uint8((pqIdx - 1) % vals)
								}
								if qpIdx > 0 {
									c.qpFull = true
									c.qpS = uint8((qpIdx - 1) / vals)
									c.qpE = uint8((qpIdx - 1) % vals)
								}
								idx := e.encode(&c)
								if !visited.has(idx) {
									visited.set(idx)
									queue = append(queue, idx)
									res.InitialConfigs++
								}
							}
						}
					}
				}
			}
		}
	}

	// BFS.
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for op := 0; op < numOps; op++ {
			e.decode(cur, &e.cur)
			e.violated = false
			if !e.apply(op) {
				continue
			}
			if e.violated {
				res.Explored = len(queue)
				res.Violation = &ViolationInfo{
					Description: e.violation + " (transition: " + opNames[op] + ")",
					Config:      e.render(&e.cur),
				}
				if parents != nil {
					res.Violation.Trace = buildTrace(e, parents, cur, op)
					res.Violation.Ops, res.Violation.Init = buildReplay(e, parents, cur, op)
				}
				return res, nil
			}
			succ := e.encode(&e.cur)
			if succ == cur || visited.has(succ) {
				continue
			}
			visited.set(succ)
			queue = append(queue, succ)
			if parents != nil {
				parents[succ] = parentEdge{from: cur, op: uint8(op)}
			}
		}
	}

	res.Explored = len(queue)
	res.Exhaustive = true
	return res, nil
}

type parentEdge struct {
	from uint64
	op   uint8
}

// buildTrace reconstructs the path from an initial configuration to the
// violating transition.
func buildTrace(e *explorer, parents map[uint64]parentEdge, last uint64, finalOp int) []string {
	var chain []parentEdge
	cur := last
	for {
		edge, ok := parents[cur]
		if !ok {
			break
		}
		chain = append(chain, edge)
		cur = edge.from
	}
	var c conf
	out := make([]string, 0, len(chain)+2)
	e.decode(cur, &c)
	out = append(out, "initial: "+e.render(&c))
	for i := len(chain) - 1; i >= 0; i-- {
		edge := chain[i]
		e.decode(edge.from, &c)
		e.cur = c
		e.apply(int(edge.op))
		out = append(out, fmt.Sprintf("%-14s -> %s", opNames[edge.op], e.render(&e.cur)))
	}
	out = append(out, fmt.Sprintf("%-14s -> VIOLATION", opNames[finalOp]))
	return out
}

// buildReplay reconstructs the machine-readable counter-example: the
// structured initial configuration and the transition name sequence
// (including the final violating transition).
func buildReplay(e *explorer, parents map[uint64]parentEdge, last uint64, finalOp int) ([]string, *InitConf) {
	var chain []parentEdge
	cur := last
	for {
		edge, ok := parents[cur]
		if !ok {
			break
		}
		chain = append(chain, edge)
		cur = edge.from
	}
	ops := make([]string, 0, len(chain)+1)
	for i := len(chain) - 1; i >= 0; i-- {
		ops = append(ops, opNames[chain[i].op])
	}
	ops = append(ops, opNames[finalOp])

	var c conf
	e.decode(cur, &c)
	init := &InitConf{
		PReq: c.pReq, PS: c.pS, PN: c.pN,
		QReq: c.qReq, QS: c.qS, QN: c.qN,
	}
	if c.pqFull {
		init.PQ = &MsgConf{S: c.pqS, E: c.pqE}
	}
	if c.qpFull {
		init.QP = &MsgConf{S: c.qpS, E: c.qpE}
	}
	return ops, init
}
