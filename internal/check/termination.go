package check

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

// TermResult reports a termination analysis.
type TermResult struct {
	// States is the size of the abstract space (all states are initial:
	// I = C).
	States int
	// Edges counts the transitions examined while building the graph.
	Edges int
	// PTrapped and QTrapped count configurations from which the
	// respective process's current computation can never terminate
	// (Request = Done unreachable). Zero means Termination holds.
	PTrapped, QTrapped int
	// SampleTrap renders one trapped configuration, when any exists.
	SampleTrap string
}

// Termination runs the exhaustive termination analysis on the payload-free
// abstraction. Every configuration of the abstract space is initial
// (I = C); both processes receive external re-requests, so the system
// cycles forever. The property checked is: from every configuration, each
// process can reach Request = Done. On the finite transition system this
// is equivalent to almost-sure termination under any memoryless fair
// scheduler (a finite Markov chain reaches a state that stays reachable
// with probability 1).
func Termination(opt Options) (TermResult, error) {
	opt = opt.withDefaults()
	e := newExplorer(opt.FlagTop, false)
	if e.total > opt.MaxStates {
		return TermResult{}, fmt.Errorf("check: abstract space has %d states, above the %d limit", e.total, opt.MaxStates)
	}
	n := e.total
	res := TermResult{States: int(n)}

	// Build the forward adjacency in CSR form. Every configuration is a
	// node; disabled transitions and self-loops are skipped.
	counts := make([]uint32, n+1)
	type edgeBuf struct{ from, to uint64 }
	edges := make([]edgeBuf, 0, int(n)*4)
	for idx := uint64(0); idx < n; idx++ {
		for op := 0; op < numOps; op++ {
			e.decode(idx, &e.cur)
			if !e.apply(op) {
				continue
			}
			succ := e.encode(&e.cur)
			if succ == idx {
				continue
			}
			edges = append(edges, edgeBuf{from: idx, to: succ})
		}
	}
	res.Edges = len(edges)

	// Reverse CSR: for each node, the list of predecessors.
	for _, ed := range edges {
		counts[ed.to+1]++
	}
	for i := uint64(1); i <= n; i++ {
		counts[i] += counts[i-1]
	}
	preds := make([]uint32, len(edges))
	fill := make([]uint32, n)
	for _, ed := range edges {
		pos := counts[ed.to] + fill[ed.to]
		preds[pos] = uint32(ed.from)
		fill[ed.to]++
	}

	// canReach(target) via reverse BFS.
	canReach := func(target func(c *conf) bool) bitset {
		marked := newBitset(n)
		var queue []uint64
		var c conf
		for idx := uint64(0); idx < n; idx++ {
			e.decode(idx, &c)
			if target(&c) {
				marked.set(idx)
				queue = append(queue, idx)
			}
		}
		for head := 0; head < len(queue); head++ {
			node := queue[head]
			for _, pred := range preds[counts[node]:counts[node+1]] {
				p64 := uint64(pred)
				if !marked.has(p64) {
					marked.set(p64)
					queue = append(queue, p64)
				}
			}
		}
		return marked
	}

	pDone := canReach(func(c *conf) bool { return c.pReq == uint8(core.Done) })
	qDone := canReach(func(c *conf) bool { return c.qReq == uint8(core.Done) })

	var c conf
	for idx := uint64(0); idx < n; idx++ {
		trapped := false
		if !pDone.has(idx) {
			res.PTrapped++
			trapped = true
		}
		if !qDone.has(idx) {
			res.QTrapped++
			trapped = true
		}
		if trapped && res.SampleTrap == "" {
			e.decode(idx, &c)
			res.SampleTrap = e.render(&c)
		}
	}
	return res, nil
}
