package check

import (
	"testing"
)

// TestSafetyPaperProtocolExhaustive is the headline verification: the
// paper's flag domain {0..4} admits no execution, from any abstract
// initial configuration, in which the started computation accepts stale
// feedback. This machine-checks the causal content of Lemmas 4-6.
func TestSafetyPaperProtocolExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	t.Parallel()
	res, err := Safety(Options{FlagTop: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation found:\n%s\nconfig: %s\ntrace:\n%v",
			res.Violation.Description, res.Violation.Config, res.Violation.Trace)
	}
	if !res.Exhaustive {
		t.Fatal("exploration was not exhaustive")
	}
	if res.Explored < res.InitialConfigs {
		t.Fatalf("explored %d < initial %d; exploration is broken", res.Explored, res.InitialConfigs)
	}
	t.Logf("exhaustive: %d initial configurations, %d reachable states, no violation",
		res.InitialConfigs, res.Explored)
}

// TestSafetyAblationFindsViolations is the E9 ablation: every flag domain
// smaller than the paper's admits a garbage-driven stale decision, and the
// checker produces the counter-example.
func TestSafetyAblationFindsViolations(t *testing.T) {
	t.Parallel()
	for _, top := range []int{1, 2, 3} {
		top := top
		res, err := Safety(Options{FlagTop: top, TraceViolation: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("FlagTop=%d: no violation found; the ablation should be unsound", top)
		}
		if len(res.Violation.Trace) == 0 {
			t.Fatalf("FlagTop=%d: violation without counter-example trace", top)
		}
		t.Logf("FlagTop=%d: %s\n  %d-step counter-example, e.g. %s",
			top, res.Violation.Description, len(res.Violation.Trace), res.Violation.Config)
	}
}

// TestSafetyFlagTopFiveAlsoSafe: a larger-than-necessary flag domain stays
// safe (the bound is about a minimum, not an exact value).
func TestSafetyFlagTopFiveAlsoSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	t.Parallel()
	res, err := Safety(Options{FlagTop: 5, MaxStates: 300_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("FlagTop=5 violated: %s", res.Violation.Description)
	}
}

// TestTerminationPaperProtocol checks the Termination clause exhaustively
// on the payload-free abstraction.
func TestTerminationPaperProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	t.Parallel()
	res, err := Termination(Options{FlagTop: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PTrapped != 0 || res.QTrapped != 0 {
		t.Fatalf("trapped configurations: p=%d q=%d, e.g. %s", res.PTrapped, res.QTrapped, res.SampleTrap)
	}
	t.Logf("termination: %d states, %d edges, no traps", res.States, res.Edges)
}

// TestTerminationAblatedStillTerminates: small flag domains break safety
// but not termination — handshakes still complete, just too easily.
func TestTerminationAblatedStillTerminates(t *testing.T) {
	t.Parallel()
	res, err := Termination(Options{FlagTop: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PTrapped != 0 || res.QTrapped != 0 {
		t.Fatalf("trapped configurations: p=%d q=%d", res.PTrapped, res.QTrapped)
	}
}

func TestStateSpaceLimit(t *testing.T) {
	t.Parallel()
	if _, err := Safety(Options{FlagTop: 4, MaxStates: 1000}); err == nil {
		t.Fatal("oversized space not rejected")
	}
	if _, err := Termination(Options{FlagTop: 4, MaxStates: 1000}); err == nil {
		t.Fatal("oversized space not rejected")
	}
}

// TestEncodeDecodeRoundTrip exercises the packing over the whole space of
// a small domain.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	for _, safety := range []bool{true, false} {
		e := newExplorer(2, safety)
		var c conf
		for idx := uint64(0); idx < e.total; idx++ {
			e.decode(idx, &c)
			if got := e.encode(&c); got != idx {
				t.Fatalf("safety=%v: decode/encode(%d) = %d", safety, idx, got)
			}
		}
	}
}

func TestRenderReadable(t *testing.T) {
	t.Parallel()
	e := newExplorer(4, true)
	var c conf
	e.decode(12345, &c)
	if s := e.render(&c); s == "" {
		t.Fatal("empty rendering")
	}
}

func BenchmarkSafetySuccessors(b *testing.B) {
	e := newExplorer(4, true)
	for i := 0; i < b.N; i++ {
		idx := uint64(i) % e.total
		for op := 0; op < numOps; op++ {
			e.decode(idx, &e.cur)
			e.apply(op)
		}
	}
}
