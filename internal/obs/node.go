// Node-level metric assembly: the standard metric set a snapd daemon
// exposes, wired from the protocol event stream and the transport
// counters. Everything here is substrate-agnostic — it consumes
// core.Observer events and core.TransportStatser snapshots, the same
// interfaces the tests and tools already use.
package obs

import (
	"strconv"

	"github.com/snapstab/snapstab/internal/core"
)

// NodeMetrics is the daemon's metric set over one registry.
type NodeMetrics struct {
	reg *Registry

	// events counts every observed protocol event by kind — the
	// protocol-phase counters (sends, deliveries, losses, starts,
	// decisions, CS entries, forward deliveries, ...).
	events *CounterVec

	// RequestLatency observes end-to-end request durations in seconds,
	// labelled nowhere (one histogram per daemon).
	RequestLatency *Histogram

	// Requests counts control-plane requests by operation and outcome.
	Requests *CounterVec
}

// NewNodeMetrics registers the daemon's standard metric set on a fresh
// registry. node and protocol become constant labels on the info gauge;
// stats, when non-nil, is sampled at every scrape for the transport and
// fault families.
func NewNodeMetrics(node int, protocol string, stats core.TransportStatser) *NodeMetrics {
	reg := NewRegistry()
	m := &NodeMetrics{
		reg:            reg,
		events:         reg.NewCounter("snapstab_events_total", "Protocol events observed at this node, by event kind.", "kind"),
		RequestLatency: reg.NewHistogram("snapstab_request_duration_seconds", "End-to-end duration of control-plane requests.", DefaultLatencyBuckets),
		Requests:       reg.NewCounter("snapstab_requests_total", "Control-plane requests, by operation and outcome.", "op", "outcome"),
	}
	reg.NewGaugeFunc("snapstab_node_info", "Constant 1, carrying the node identity as labels.",
		[]string{"node", "protocol"},
		func(emit func([]string, float64)) {
			emit([]string{strconv.Itoa(node), protocol}, 1)
		})
	if stats != nil {
		registerTransport(reg, node, stats)
	}
	return m
}

// Registry returns the underlying registry (for the /metrics handler and
// for registering additional families).
func (m *NodeMetrics) Registry() *Registry { return m.reg }

// Observer returns the core.Observer feeding the event counters; it is
// goroutine-safe and cheap (one atomic add per event).
func (m *NodeMetrics) Observer() core.Observer {
	return core.ObserverFunc(func(e core.Event) {
		m.events.With(e.Kind.String()).Inc()
	})
}

// CountEvent feeds the event counters by kind name — the entry point for
// the façade's public WithEventHook, which surfaces kinds as strings.
func (m *NodeMetrics) CountEvent(kind string) {
	m.events.With(kind).Inc()
}

// transportFields maps the node-level counter names to their accessors,
// shared by the gauge collectors below.
var transportFields = []struct {
	name string
	help string
	get  func(core.TransportStats) int64
}{
	{"snapstab_transport_sends_total", "Messages handed to the network by this node.", func(s core.TransportStats) int64 { return s.Sends }},
	{"snapstab_transport_recvs_total", "Messages received into this node's mailbox layer.", func(s core.TransportStats) int64 { return s.Recvs }},
	{"snapstab_transport_send_drops_total", "Messages lost at the sender (dead connections, full queues, failed writes).", func(s core.TransportStats) int64 { return s.SendDrops }},
	{"snapstab_transport_mailbox_drops_total", "Messages dropped at a full receive mailbox (lose-on-full).", func(s core.TransportStats) int64 { return s.MailboxDrops }},
	{"snapstab_transport_redials_total", "Connections re-established after a loss (TCP lifecycle).", func(s core.TransportStats) int64 { return s.Redials }},
	{"snapstab_transport_send_datagrams_total", "Datagrams (UDP) or wire frames (TCP) written by this node; messages batch into them.", func(s core.TransportStats) int64 { return s.SendDatagrams }},
	{"snapstab_transport_recv_datagrams_total", "Datagrams (UDP) or wire frames (TCP) read by this node.", func(s core.TransportStats) int64 { return s.RecvDatagrams }},
	{"snapstab_transport_send_syscalls_total", "Socket write system calls; sendmmsg and vectored writes keep this below the datagram count.", func(s core.TransportStats) int64 { return s.SendSyscalls }},
	{"snapstab_transport_recv_syscalls_total", "Socket read system calls; recvmmsg and buffered reads keep this below the datagram count.", func(s core.TransportStats) int64 { return s.RecvSyscalls }},
}

// faultFields maps the injected-fault counters by fault type.
var faultFields = []struct {
	typ string
	get func(core.FaultStats) int64
}{
	{"drop", func(f core.FaultStats) int64 { return f.Drops }},
	{"duplicate", func(f core.FaultStats) int64 { return f.Duplicates }},
	{"reorder", func(f core.FaultStats) int64 { return f.Reorders }},
	{"delay", func(f core.FaultStats) int64 { return f.Delays }},
	{"corrupt", func(f core.FaultStats) int64 { return f.Corrupts }},
	{"partition_drop", func(f core.FaultStats) int64 { return f.PartitionDrops }},
	{"crash_drop", func(f core.FaultStats) int64 { return f.CrashDrops }},
}

// registerTransport wires the scrape-time transport families: node-level
// totals, per-directed-link throughput, and injected-fault counters. The
// families render as gauges sampled from the live transport counters —
// monotone in practice, but a daemon restart resets them, which gauge
// semantics state honestly.
func registerTransport(reg *Registry, node int, stats core.TransportStatser) {
	// self returns this node's snapshot; on a Host substrate the slice
	// has zero entries for remote processes and only index node is real.
	self := func() core.TransportStats {
		all := stats.TransportStats()
		if node < 0 || node >= len(all) {
			return core.TransportStats{}
		}
		return all[node]
	}
	for _, tf := range transportFields {
		tf := tf
		reg.NewGaugeFunc(tf.name, tf.help, nil, func(emit func([]string, float64)) {
			emit(nil, float64(tf.get(self())))
		})
	}
	reg.NewGaugeFunc("snapstab_link_sent_total", "Messages sent toward each peer over this node's links.",
		[]string{"peer"}, func(emit func([]string, float64)) {
			for _, l := range self().Links {
				emit([]string{strconv.Itoa(int(l.Peer))}, float64(l.Sent))
			}
		})
	reg.NewGaugeFunc("snapstab_link_received_total", "Messages received from each peer over this node's links.",
		[]string{"peer"}, func(emit func([]string, float64)) {
			for _, l := range self().Links {
				emit([]string{strconv.Itoa(int(l.Peer))}, float64(l.Received))
			}
		})
	reg.NewGaugeFunc("snapstab_link_dropped_total", "Messages lost per link at this node, either direction.",
		[]string{"peer"}, func(emit func([]string, float64)) {
			for _, l := range self().Links {
				emit([]string{strconv.Itoa(int(l.Peer))}, float64(l.Dropped))
			}
		})
	// Derived batching-efficiency gauges: cumulative ratios over the
	// whole process lifetime, zero until the first write/read.
	ratio := func(num, den int64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	reg.NewGaugeFunc("snapstab_transport_send_batch_occupancy", "Messages per outbound datagram/frame (wire v3 batching efficiency).",
		nil, func(emit func([]string, float64)) {
			s := self()
			emit(nil, ratio(s.Sends, s.SendDatagrams))
		})
	reg.NewGaugeFunc("snapstab_transport_sends_per_syscall", "Messages moved per socket write system call (syscall amortization).",
		nil, func(emit func([]string, float64)) {
			s := self()
			emit(nil, ratio(s.Sends, s.SendSyscalls))
		})
	reg.NewGaugeFunc("snapstab_transport_recvs_per_syscall", "Messages accepted per socket read system call (syscall amortization).",
		nil, func(emit func([]string, float64)) {
			s := self()
			emit(nil, ratio(s.Recvs, s.RecvSyscalls))
		})
	reg.NewGaugeFunc("snapstab_faults_injected_total", "Faults injected at this node's mailbox boundary by the fault plan, by type.",
		[]string{"type"}, func(emit func([]string, float64)) {
			f := self().Faults
			for _, ff := range faultFields {
				emit([]string{ff.typ}, float64(ff.get(f)))
			}
		})
}
