// Structured logging for the daemon: slog with the node identity on
// every record and compact monotone request ids for correlating a
// request's records across its lifecycle (and across daemons, since the
// id embeds the node).
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger returns a JSON slog logger writing to w at the given level,
// with the node identity attached to every record.
func NewLogger(w io.Writer, level slog.Level, node int, protocol string) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("node", node, "protocol", protocol)
}

// ParseLevel maps the config file's level names onto slog levels,
// defaulting to info for unknown values.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// RequestIDs mints per-daemon request ids: "r<node>-<seq>". Monotone
// within a daemon run; the node prefix keeps ids from different daemons
// distinct in merged logs.
type RequestIDs struct {
	node int
	seq  atomic.Int64
}

// NewRequestIDs returns a minter for the given node.
func NewRequestIDs(node int) *RequestIDs { return &RequestIDs{node: node} }

// Next returns a fresh id.
func (r *RequestIDs) Next() string {
	return fmt.Sprintf("r%d-%d", r.node, r.seq.Add(1))
}
