package obs

import (
	"strings"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// TestRenderExpositionFormat pins the exposition text for each family
// type: HELP/TYPE headers, label escaping, histogram cumulative buckets.
func TestRenderExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_events_total", "Events by kind.", "kind")
	c.With("send").Add(3)
	c.With(`we"ird`).Inc()
	reg.NewGaugeFunc("test_up", "Always one.", nil, func(emit func([]string, float64)) {
		emit(nil, 1)
	})
	h := reg.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	got := reg.Render()
	for _, want := range []string{
		"# HELP test_events_total Events by kind.\n# TYPE test_events_total counter\n",
		`test_events_total{kind="send"} 3`,
		`test_events_total{kind="we\"ird"} 1`,
		"# TYPE test_up gauge\ntest_up 1\n",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestRegistryRejectsBadNames pins the registration-time panics.
func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("bad metric name", func() { reg.NewCounter("1bad", "x") })
	mustPanic("bad label name", func() { reg.NewCounter("ok_total", "x", "bad-label") })
	reg.NewCounter("dup_total", "x")
	mustPanic("duplicate", func() { reg.NewCounter("dup_total", "x") })
	v := reg.NewCounter("labelled_total", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

// fakeStatser returns a fixed snapshot for the transport families.
type fakeStatser struct{ stats []core.TransportStats }

func (f fakeStatser) TransportStats() []core.TransportStats { return f.stats }

// TestNodeMetricsEndToEnd wires the daemon metric set from a synthetic
// event stream and transport snapshot and checks the scrape contains the
// acceptance-critical series: nonzero per-link throughput and a nonzero
// latency histogram.
func TestNodeMetricsEndToEnd(t *testing.T) {
	stats := fakeStatser{stats: []core.TransportStats{
		{},
		{
			Addr: "127.0.0.1:9", Sends: 10, Recvs: 8, Redials: 1,
			Links:  []core.LinkStats{{Peer: 0, Sent: 6, Received: 5}, {Peer: 2, Sent: 4, Received: 3, Dropped: 1}},
			Faults: core.FaultStats{Drops: 2},
		},
		{},
	}}
	m := NewNodeMetrics(1, "pif", stats)
	obs := m.Observer()
	obs.OnEvent(core.Event{Kind: core.EvSend})
	obs.OnEvent(core.Event{Kind: core.EvDecide})
	obs.OnEvent(core.Event{Kind: core.EvDecide})
	m.RequestLatency.Observe(0.01)
	m.Requests.With("broadcast", "ok").Inc()

	got := m.Registry().Render()
	for _, want := range []string{
		`snapstab_node_info{node="1",protocol="pif"} 1`,
		`snapstab_events_total{kind="send"} 1`,
		`snapstab_events_total{kind="decide"} 2`,
		"snapstab_transport_sends_total 10",
		"snapstab_transport_recvs_total 8",
		"snapstab_transport_redials_total 1",
		`snapstab_link_sent_total{peer="0"} 6`,
		`snapstab_link_received_total{peer="2"} 3`,
		`snapstab_link_dropped_total{peer="2"} 1`,
		`snapstab_faults_injected_total{type="drop"} 2`,
		`snapstab_requests_total{op="broadcast",outcome="ok"} 1`,
		`snapstab_request_duration_seconds_bucket{le="0.016"} 1`,
		"snapstab_request_duration_seconds_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q:\n%s", want, got)
		}
	}
}
