// Package obs is the observability layer of the deployment plane: a
// dependency-free Prometheus metrics registry (text exposition format
// 0.0.4), an event observer mapping the protocol event stream onto
// counters, transport-counter collection at scrape time, and structured
// logging helpers with per-request ids.
//
// The registry implements the slice of the Prometheus data model the
// daemon needs — counters, collect-time gauges, and cumulative
// histograms, each with a fixed label set — rather than a general client
// library. Series are identified by their rendered label values, metric
// families render in registration order, and series within a family in
// first-use order, so scrapes are deterministic for tests.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format.
type Registry struct {
	mu       sync.Mutex
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]*series
	order  []string

	// collect, when non-nil, replaces the stored series at render time
	// (gauge families sampled from live counters).
	collect func(emit func(labelValues []string, v float64))
	// histogram, when non-nil, renders the family as bucket series.
	histogram *Histogram
}

// series is one labelled time series of a counter or gauge family.
type series struct {
	labelValues []string
	bits        atomic.Uint64 // float64 bits
}

func (s *series) add(v float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *series) value() float64 { return math.Float64frombits(s.bits.Load()) }

// register appends the family, panicking on duplicate names or invalid
// identifiers — both are programming errors in the daemon, not runtime
// conditions.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic("obs: invalid metric name " + f.name)
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic("obs: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, prev := range r.families {
		if prev.name == f.name {
			panic("obs: duplicate metric " + f.name)
		}
	}
	r.families = append(r.families, f)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// NewCounter registers a counter family. labelNames may be empty for a
// single-series counter.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *CounterVec {
	f := &family{name: name, help: help, typ: "counter", labels: labelNames, series: make(map[string]*series)}
	r.register(f)
	return &CounterVec{f: f}
}

// With returns the series for the given label values (created on first
// use), for Add/Inc.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// Counter is one series of a CounterVec.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.add(1) }

// Add adds delta (must be >= 0 for counter semantics; not enforced).
func (c *Counter) Add(delta float64) { c.s.add(delta) }

// Value returns the current value (for tests).
func (c *Counter) Value() float64 { return c.s.value() }

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d labels", f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// NewGaugeFunc registers a gauge family whose series are produced by
// collect at every scrape: collect calls emit once per series, with one
// value per label name. Use it to sample live counters (transport stats)
// without maintaining parallel state.
func (r *Registry) NewGaugeFunc(name, help string, labelNames []string, collect func(emit func(labelValues []string, v float64))) {
	f := &family{name: name, help: help, typ: "gauge", labels: labelNames, collect: collect}
	r.register(f)
}

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	f      *family
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// DefaultLatencyBuckets spans 1ms..~16s exponentially — wide enough for
// a protocol request on loopback and for a fleet crossing real networks.
var DefaultLatencyBuckets = []float64{
	0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128,
	0.256, 0.512, 1.024, 2.048, 4.096, 8.192, 16.384,
}

// NewHistogram registers a histogram family with the given upper bounds
// (ascending; +Inf is implicit). No labels: the daemon keys histograms
// by metric name.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending: " + name)
		}
	}
	h := &Histogram{
		f:      &family{name: name, help: help, typ: "histogram"},
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	h.f.histogram = h
	r.register(h.f)
	return h
}

// Observe records one value (in the metric's unit, seconds for
// latencies).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the total number of observations (for tests).
func (h *Histogram) Count() int64 { return h.count.Load() }

// Handler returns an http.Handler serving the registry in the text
// exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.Render()))
	})
}

// Render produces the full exposition text.
func (r *Registry) Render() string {
	var b strings.Builder
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.histogram != nil:
			f.histogram.render(&b)
		case f.collect != nil:
			f.collect(func(labelValues []string, v float64) {
				writeSample(&b, f.name, f.labels, labelValues, v)
			})
		default:
			f.mu.Lock()
			keys := append([]string(nil), f.order...)
			f.mu.Unlock()
			for _, key := range keys {
				f.mu.Lock()
				s := f.series[key]
				f.mu.Unlock()
				writeSample(&b, f.name, f.labels, s.labelValues, s.value())
			}
		}
	}
	return b.String()
}

func (h *Histogram) render(b *strings.Builder) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, h.f.name+"_bucket", []string{"le"}, []string{formatFloat(bound)}, float64(cum))
	}
	writeSample(b, h.f.name+"_bucket", []string{"le"}, []string{"+Inf"}, float64(h.count.Load()))
	h.sumMu.Lock()
	sum := h.sum
	h.sumMu.Unlock()
	writeSample(b, h.f.name+"_sum", nil, nil, sum)
	writeSample(b, h.f.name+"_count", nil, nil, float64(h.count.Load()))
}

func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			// %q escaping is a superset of the exposition format's
			// (\\, \", \n), so label values need nothing further.
			fmt.Fprintf(b, "%s=%q", ln, labelValues[i])
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders integral values without an exponent or trailing
// zeros, matching what scrapers and humans expect from counters.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}
