package baseline

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

func ackFor(id core.ProcID, b core.Payload) core.Payload {
	return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(id)}
}

func cb(id core.ProcID) pif.Callbacks {
	return pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			return ackFor(id, b)
		},
	}
}

// --- Naive ---

func naiveNet(n int, opts ...sim.Option) (*sim.Network, []*Naive) {
	machines := make([]*Naive, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = NewNaive("npif", core.ProcID(i), n, cb(core.ProcID(i)))
		stacks[i] = core.Stack{machines[i]}
	}
	return sim.New(stacks, opts...), machines
}

func TestNaiveCleanRunCompletes(t *testing.T) {
	t.Parallel()
	net, machines := naiveNet(4, sim.WithSeed(3))
	token := core.Payload{Tag: "m", Num: 2}
	if !machines[0].Invoke(net.Env(0), token) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(machines[0].Done, 500000); err != nil {
		t.Fatalf("clean naive run did not complete: %v", err)
	}
}

func TestNaiveDeadlocksUnderLoss(t *testing.T) {
	t.Parallel()
	// With no retransmission, a lost broadcast or feedback blocks the
	// computation forever. Drop the broadcast deterministically.
	net, machines := naiveNet(2)
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "m"})
	net.Activate(0) // sends the single broadcast
	net.Lose(sim.LinkKey{From: 0, To: 1, Instance: "npif"})
	if err := net.RunUntil(machines[0].Done, 50000); err == nil {
		t.Fatal("naive protocol completed despite the lost broadcast; expected deadlock")
	}
}

func TestNaiveAcceptsForgedFeedback(t *testing.T) {
	t.Parallel()
	// A garbage feedback message in the initial configuration is accepted
	// as the real acknowledgment: the initiator decides although process
	// 1 never received anything.
	net, machines := naiveNet(2)
	forged := core.Message{Instance: "npif", Kind: KindNaiveFck, F: core.Payload{Tag: "forged"}}
	if err := net.Link(sim.LinkKey{From: 1, To: 0, Instance: "npif"}).Preload([]core.Message{forged}); err != nil {
		t.Fatal(err)
	}
	var accepted core.Payload
	machines[0].cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { accepted = f }

	machines[0].Invoke(net.Env(0), core.Payload{Tag: "fresh"})
	net.Activate(0)
	// Deliver the forged feedback; drop the genuine broadcast so process
	// 1 demonstrably never participates.
	net.Deliver(sim.LinkKey{From: 1, To: 0, Instance: "npif"})
	net.Lose(sim.LinkKey{From: 0, To: 1, Instance: "npif"})
	net.Activate(0)
	if !machines[0].Done() {
		t.Fatal("initiator did not decide on the forged feedback")
	}
	if accepted.Tag != "forged" {
		t.Fatalf("accepted feedback = %v, want the forged one", accepted)
	}
}

func TestNaiveCorruptInDomain(t *testing.T) {
	t.Parallel()
	m := NewNaive("npif", 0, 3, pif.Callbacks{})
	m.Corrupt(rng.New(4))
	if m.Request > core.Done {
		t.Fatalf("Request %v out of domain", m.Request)
	}
}

// --- SeqPIF ---

func seqNet(n int, opts ...sim.Option) (*sim.Network, []*SeqPIF) {
	machines := make([]*SeqPIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = NewSeqPIF("seq", core.ProcID(i), n, cb(core.ProcID(i)))
		stacks[i] = core.Stack{machines[i]}
	}
	return sim.New(stacks, opts...), machines
}

func TestSeqCleanRunCompletes(t *testing.T) {
	t.Parallel()
	net, machines := seqNet(4, sim.WithSeed(7), sim.WithUnbounded())
	token := core.Payload{Tag: "m", Num: 5}
	if !machines[0].Invoke(net.Env(0), token) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestSeqSurvivesLoss(t *testing.T) {
	t.Parallel()
	net, machines := seqNet(3, sim.WithSeed(9), sim.WithUnbounded(), sim.WithLossRate(0.4))
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "m"})
	if err := net.RunUntil(machines[0].Done, 3_000_000); err != nil {
		t.Fatalf("retransmitting protocol did not survive loss: %v", err)
	}
}

func TestSeqFooledExactlyByPreloadedNumbers(t *testing.T) {
	t.Parallel()
	// Preload G forged acknowledgments numbered 1..G: the first G
	// computations are violated (decided without the peer receiving the
	// broadcast), then the protocol has converged and computation G+1 is
	// genuine. This is the self- vs snap-stabilization gap of E8.
	const G = 5
	net, machines := seqNet(2, sim.WithSeed(11), sim.WithUnbounded())
	if err := net.Link(sim.LinkKey{From: 1, To: 0, Instance: "seq"}).Preload(
		AscendingGarbageAcks("seq", 1, G)); err != nil {
		t.Fatal(err)
	}

	brdAt1 := 0
	machines[1].cb.OnBroadcast = func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
		brdAt1++
		return ackFor(1, b)
	}

	// The adversarial schedule: each round, the initiator starts and the
	// matching forged acknowledgment is delivered before anything else.
	// (Under a random scheduler a forged acknowledgment can also be
	// consumed harmlessly while the initiator is between computations —
	// the adversary does not waste its ammunition like that.)
	k10 := sim.LinkKey{From: 1, To: 0, Instance: "seq"}
	fooled := 0
	for round := 1; round <= G; round++ {
		var got core.Payload
		machines[0].cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { got = f }
		token := core.Payload{Tag: "m", Num: int64(round)}
		if !machines[0].Invoke(net.Env(0), token) {
			t.Fatalf("round %d: Invoke rejected", round)
		}
		net.Activate(0)  // start: counter = round, broadcast sent
		net.Deliver(k10) // forged ack numbered round: accepted
		net.Activate(0)  // decide
		if !machines[0].Done() {
			t.Fatalf("round %d: initiator did not decide on the forged ack", round)
		}
		if got.Tag == "forged" {
			fooled++
		}
	}
	if fooled != G {
		t.Fatalf("fooled %d computations, want exactly %d", fooled, G)
	}
	if brdAt1 != 0 {
		t.Fatalf("peer received %d broadcasts during the fooled window; the violations are real only if it received none", brdAt1)
	}
	// Ammunition exhausted: the next computation is genuine.
	var got core.Payload
	machines[0].cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { got = f }
	token := core.Payload{Tag: "m", Num: G + 1}
	machines[0].Invoke(net.Env(0), token)
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ackFor(1, token)) {
		t.Fatalf("post-convergence feedback = %v, want genuine %v", got, ackFor(1, token))
	}
	if brdAt1 == 0 {
		t.Fatal("peer never received the post-convergence broadcast")
	}
}

func TestSeqConvergedRunsStayCorrect(t *testing.T) {
	t.Parallel()
	// After convergence (counter above every garbage number), repeated
	// computations are all genuine.
	net, machines := seqNet(2, sim.WithSeed(13), sim.WithUnbounded())
	machines[0].Counter = 100 // far above any garbage the corruptor plants
	for round := 0; round < 5; round++ {
		token := core.Payload{Tag: "m", Num: int64(round)}
		var got core.Payload
		machines[0].cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { got = f }
		machines[0].Invoke(net.Env(0), token)
		if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !got.Equal(ackFor(1, token)) {
			t.Fatalf("round %d: feedback %v, want %v", round, got, ackFor(1, token))
		}
	}
}

func TestSeqCountersMonotone(t *testing.T) {
	t.Parallel()
	net, machines := seqNet(2, sim.WithSeed(15), sim.WithUnbounded())
	prev := machines[0].Counter
	for round := 0; round < 3; round++ {
		machines[0].Invoke(net.Env(0), core.Payload{Tag: "m"})
		if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
			t.Fatal(err)
		}
		if machines[0].Counter <= prev {
			t.Fatalf("counter did not increase: %d -> %d", prev, machines[0].Counter)
		}
		prev = machines[0].Counter
	}
}

func TestAscendingGarbageShape(t *testing.T) {
	t.Parallel()
	acks := AscendingGarbageAcks("seq", 3, 4)
	if len(acks) != 4 {
		t.Fatalf("len = %d, want 4", len(acks))
	}
	for i, a := range acks {
		if a.Kind != KindSeqFck || a.B.Num != int64(3+i) {
			t.Fatalf("ack %d = %v, want number %d", i, a, 3+i)
		}
	}
}

func TestConstructorsValidate(t *testing.T) {
	t.Parallel()
	for name, f := range map[string]func(){
		"naive n=1": func() { NewNaive("x", 0, 1, pif.Callbacks{}) },
		"seq n=1":   func() { NewSeqPIF("x", 0, 1, pif.Callbacks{}) },
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSnapshotsDistinguish(t *testing.T) {
	t.Parallel()
	a, b := NewSeqPIF("s", 0, 2, pif.Callbacks{}), NewSeqPIF("s", 0, 2, pif.Callbacks{})
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical seq machines encode differently")
	}
	b.Counter = 3
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("counter change invisible")
	}
	c, d := NewNaive("n", 0, 2, pif.Callbacks{}), NewNaive("n", 0, 2, pif.Callbacks{})
	if string(c.AppendState(nil)) != string(d.AppendState(nil)) {
		t.Fatal("identical naive machines encode differently")
	}
	d.Acked[1] = true
	if string(c.AppendState(nil)) == string(d.AppendState(nil)) {
		t.Fatal("ack change invisible")
	}
}
