package baseline

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// Message kinds of the sequence-number protocol.
const (
	// KindSeqBrd carries the broadcast value, numbered.
	KindSeqBrd = "SEQ-B"
	// KindSeqFck carries the feedback value, echoing the number.
	KindSeqFck = "SEQ-F"
)

// SeqPIF is a deterministic self-stabilizing PIF over unbounded channels:
// every computation is numbered by an ever-increasing counter; broadcasts
// are retransmitted until a matching acknowledgment arrives from every
// neighbour. Being unbounded, the counter travels in the payload Num
// fields rather than in the bounded State/Echo flag positions.
//
// The protocol stabilizes: the initial configuration holds finitely many
// garbage acknowledgments, so after the counter exceeds the largest number
// among them, every computation is genuine. It is not snap-stabilizing:
// a garbage acknowledgment numbered c fools computation number c — the
// initiator decides without its broadcast having been received. This is
// the exact gap Theorem 1 proves unavoidable for deterministic protocols
// on channels of unknown capacity, and experiment E8 measures it.
type SeqPIF struct {
	inst string
	self core.ProcID
	n    int
	cb   pif.Callbacks

	// Request drives computations.
	Request core.ReqState
	// BMes is the value to broadcast.
	BMes core.Payload
	// Counter numbers computations; incremented at each start.
	Counter int64
	// Acked[q] records whether a matching acknowledgment from q arrived.
	Acked []bool
	// LastSeen[q] is the last broadcast number accepted from q, so each
	// numbered broadcast generates one receive-brd event.
	LastSeen []int64
	// LastFck[q] is the feedback computed for q's last accepted
	// broadcast, replayed on retransmissions.
	LastFck []core.Payload
}

var (
	_ core.Machine     = (*SeqPIF)(nil)
	_ core.Snapshotter = (*SeqPIF)(nil)
	_ core.Corruptible = (*SeqPIF)(nil)
)

// NewSeqPIF returns a sequence-number machine for process self.
func NewSeqPIF(inst string, self core.ProcID, n int, cb pif.Callbacks) *SeqPIF {
	if n < 2 {
		panic(fmt.Sprintf("baseline: need n >= 2, got %d", n))
	}
	return &SeqPIF{
		inst:     inst,
		self:     self,
		n:        n,
		cb:       cb,
		Request:  core.Done,
		Acked:    make([]bool, n),
		LastSeen: make([]int64, n),
		LastFck:  make([]core.Payload, n),
	}
}

// Instance returns the protocol instance ID.
func (m *SeqPIF) Instance() string { return m.inst }

// SetCallbacks replaces the application callbacks (observation hooks).
func (m *SeqPIF) SetCallbacks(cb pif.Callbacks) { m.cb = cb }

// Invoke submits an external request to broadcast b; rejected while busy.
func (m *SeqPIF) Invoke(env core.Env, b core.Payload) bool {
	if m.Request != core.Done {
		return false
	}
	m.BMes = b
	m.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: m.inst, Note: b.String()})
	return true
}

// Done reports whether no computation is requested or in progress.
func (m *SeqPIF) Done() bool { return m.Request == core.Done }

// Step starts a requested computation under a fresh number and
// retransmits until every acknowledgment arrived.
func (m *SeqPIF) Step(env core.Env) bool {
	fired := false
	if m.Request == core.Wait {
		m.Request = core.In
		m.Counter++
		for q := 0; q < m.n; q++ {
			if q != int(m.self) {
				m.Acked[q] = false
			}
		}
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: m.inst, Note: m.BMes.String()})
		fired = true
	}
	if m.Request == core.In {
		if m.allAcked() {
			m.Request = core.Done
			env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: m.inst, Note: m.BMes.String()})
		} else {
			for q := 0; q < m.n; q++ {
				if q == int(m.self) || m.Acked[q] {
					continue
				}
				env.Send(core.ProcID(q), core.Message{
					Instance: m.inst, Kind: KindSeqBrd,
					B: m.BMes, F: core.Payload{Num: m.Counter},
				})
			}
		}
		fired = true
	}
	return fired
}

func (m *SeqPIF) allAcked() bool {
	for q := 0; q < m.n; q++ {
		if q != int(m.self) && !m.Acked[q] {
			return false
		}
	}
	return true
}

// Deliver answers numbered broadcasts and accepts acknowledgments whose
// number matches the current computation. A garbage acknowledgment with
// the right number is indistinguishable from a genuine one — the
// self-stabilizing flaw.
func (m *SeqPIF) Deliver(env core.Env, from core.ProcID, msg core.Message) {
	if from == m.self || from < 0 || int(from) >= m.n {
		return
	}
	switch msg.Kind {
	case KindSeqBrd:
		num := msg.F.Num
		if m.LastSeen[from] != num {
			// New broadcast: hand it to the application exactly once.
			m.LastSeen[from] = num
			env.Emit(core.Event{Kind: core.EvRecvBrd, Peer: from, Instance: m.inst, Msg: msg, Note: msg.B.String()})
			if m.cb.OnBroadcast != nil {
				m.LastFck[from] = m.cb.OnBroadcast(env, from, msg.B)
			}
		}
		// Acknowledge every copy (retransmissions included) so the
		// initiator progresses despite a lost first reply.
		env.Send(from, core.Message{Instance: m.inst, Kind: KindSeqFck, F: m.LastFck[from], B: core.Payload{Num: num}})
	case KindSeqFck:
		if m.Request == core.In && !m.Acked[from] && msg.B.Num == m.Counter {
			m.Acked[from] = true
			env.Emit(core.Event{Kind: core.EvRecvFck, Peer: from, Instance: m.inst, Msg: msg, Note: msg.F.String()})
			if m.cb.OnFeedback != nil {
				m.cb.OnFeedback(env, from, msg.F)
			}
		}
	}
}

// AppendState appends a canonical encoding of the machine state.
func (m *SeqPIF) AppendState(dst []byte) []byte {
	dst = append(dst, 'S', byte(m.Request))
	dst = core.AppendPayload(dst, m.BMes)
	for shift := 0; shift < 64; shift += 8 {
		dst = append(dst, byte(m.Counter>>shift))
	}
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		b := byte(0)
		if m.Acked[q] {
			b = 1
		}
		dst = append(dst, b)
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(m.LastSeen[q]>>shift))
		}
		dst = core.AppendPayload(dst, m.LastFck[q])
	}
	return dst
}

// Corrupt overwrites the variables with random domain values. The counter
// is drawn small so corrupted runs exercise the pre-convergence window.
func (m *SeqPIF) Corrupt(r core.Rand) {
	m.Request = core.ReqState(r.Intn(core.NumReqStates))
	m.BMes = pif.GarbagePayload(r)
	m.Counter = int64(r.Intn(8))
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		m.Acked[q] = r.Bool()
		m.LastSeen[q] = int64(r.Intn(8))
		m.LastFck[q] = pif.GarbagePayload(r)
	}
}

// AscendingGarbageAcks synthesizes the adversarial channel preload for
// experiment E8: acknowledgments numbered first..first+count-1 in order.
// Computation number c then consumes the matching garbage acknowledgment
// and decides without the broadcast having been received — one violated
// request per preloaded number.
func AscendingGarbageAcks(inst string, first int64, count int) []core.Message {
	out := make([]core.Message, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, core.Message{
			Instance: inst,
			Kind:     KindSeqFck,
			B:        core.Payload{Num: first + int64(i)},
			F:        core.Payload{Tag: "forged"},
		})
	}
	return out
}
