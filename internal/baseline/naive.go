// Package baseline implements the comparison protocols the paper's
// argument is framed against:
//
//   - Naive is the "naive attempt" of §4.1: one broadcast message, one
//     feedback message, no handshake. Correct from a clean configuration
//     on reliable channels; from an arbitrary initial configuration it
//     deadlocks under loss and accepts feedback nobody sent.
//   - SeqPIF is a deterministic self-stabilizing (but not
//     snap-stabilizing) PIF in the style of sequence-number protocols for
//     unbounded channels (Katz & Perry; Afek & Brown's setting): each
//     computation carries a fresh counter value and accepts only matching
//     acknowledgments. It converges — once the counter passes every value
//     in the initial channel garbage, computations are correct forever —
//     but the requests issued before convergence can be violated, which is
//     precisely the self- vs snap-stabilization gap (experiment E8).
//
// Both reuse the core machine interfaces so they run on the same
// substrates and are judged by the same specification checkers as the
// snap-stabilizing protocols.
package baseline

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// Message kinds of the naive protocol.
const (
	// KindNaiveBrd carries the broadcast value.
	KindNaiveBrd = "NPIF-B"
	// KindNaiveFck carries the feedback value.
	KindNaiveFck = "NPIF-F"
)

// Naive is the naive PIF of §4.1: broadcast once, wait for one feedback
// per neighbour.
type Naive struct {
	inst string
	self core.ProcID
	n    int
	cb   pif.Callbacks

	// Request drives computations.
	Request core.ReqState
	// BMes is the value to broadcast.
	BMes core.Payload
	// Acked[q] records whether a feedback from q was accepted.
	Acked []bool
}

var (
	_ core.Machine     = (*Naive)(nil)
	_ core.Snapshotter = (*Naive)(nil)
	_ core.Corruptible = (*Naive)(nil)
)

// NewNaive returns a naive machine for process self.
func NewNaive(inst string, self core.ProcID, n int, cb pif.Callbacks) *Naive {
	if n < 2 {
		panic(fmt.Sprintf("baseline: need n >= 2, got %d", n))
	}
	return &Naive{
		inst:    inst,
		self:    self,
		n:       n,
		cb:      cb,
		Request: core.Done,
		Acked:   make([]bool, n),
	}
}

// Instance returns the protocol instance ID.
func (m *Naive) Instance() string { return m.inst }

// SetCallbacks replaces the application callbacks (observation hooks).
func (m *Naive) SetCallbacks(cb pif.Callbacks) { m.cb = cb }

// Invoke submits an external request to broadcast b; rejected while busy.
func (m *Naive) Invoke(env core.Env, b core.Payload) bool {
	if m.Request != core.Done {
		return false
	}
	m.BMes = b
	m.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: m.inst, Note: b.String()})
	return true
}

// Done reports whether no computation is requested or in progress.
func (m *Naive) Done() bool { return m.Request == core.Done }

// Step starts a requested computation (single transmission — the naive
// flaw) and terminates once every feedback arrived.
func (m *Naive) Step(env core.Env) bool {
	fired := false
	if m.Request == core.Wait {
		m.Request = core.In
		for q := 0; q < m.n; q++ {
			if q == int(m.self) {
				continue
			}
			m.Acked[q] = false
			env.Send(core.ProcID(q), core.Message{Instance: m.inst, Kind: KindNaiveBrd, B: m.BMes})
		}
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: m.inst, Note: m.BMes.String()})
		fired = true
	}
	if m.Request == core.In && m.allAcked() {
		m.Request = core.Done
		env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: m.inst, Note: m.BMes.String()})
		fired = true
	}
	return fired
}

func (m *Naive) allAcked() bool {
	for q := 0; q < m.n; q++ {
		if q != int(m.self) && !m.Acked[q] {
			return false
		}
	}
	return true
}

// Deliver accepts any broadcast (answering with the application feedback)
// and any feedback (no way to tell a stale one apart — the naive flaw).
func (m *Naive) Deliver(env core.Env, from core.ProcID, msg core.Message) {
	if from == m.self || from < 0 || int(from) >= m.n {
		return
	}
	switch msg.Kind {
	case KindNaiveBrd:
		env.Emit(core.Event{Kind: core.EvRecvBrd, Peer: from, Instance: m.inst, Msg: msg, Note: msg.B.String()})
		var f core.Payload
		if m.cb.OnBroadcast != nil {
			f = m.cb.OnBroadcast(env, from, msg.B)
		}
		env.Send(from, core.Message{Instance: m.inst, Kind: KindNaiveFck, F: f})
	case KindNaiveFck:
		if m.Request == core.In && !m.Acked[from] {
			m.Acked[from] = true
			env.Emit(core.Event{Kind: core.EvRecvFck, Peer: from, Instance: m.inst, Msg: msg, Note: msg.F.String()})
			if m.cb.OnFeedback != nil {
				m.cb.OnFeedback(env, from, msg.F)
			}
		}
	}
}

// AppendState appends a canonical encoding of the machine state.
func (m *Naive) AppendState(dst []byte) []byte {
	dst = append(dst, 'N', byte(m.Request))
	dst = core.AppendPayload(dst, m.BMes)
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		b := byte(0)
		if m.Acked[q] {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// Corrupt overwrites the variables with random domain values.
func (m *Naive) Corrupt(r core.Rand) {
	m.Request = core.ReqState(r.Intn(core.NumReqStates))
	m.BMes = pif.GarbagePayload(r)
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		m.Acked[q] = r.Bool()
	}
}

// NaiveGarbage draws a random well-formed naive-protocol message.
func NaiveGarbage(r core.Rand, inst string) core.Message {
	kind := KindNaiveBrd
	if r.Bool() {
		kind = KindNaiveFck
	}
	return core.Message{Instance: inst, Kind: kind, B: pif.GarbagePayload(r), F: pif.GarbagePayload(r)}
}
