// Package mutex implements Protocol ME (Algorithm 3 of the paper): the
// snap-stabilizing mutual exclusion protocol for fully-connected
// message-passing systems with known channel capacity.
//
// # Structure
//
// The process with the smallest identifier (the leader) owns a pointer
// variable Value designating the process currently allowed to enter the
// critical section: Value = 0 favours the leader itself, Value = k favours
// the process on its local channel k. Every process loops forever through
// five phases:
//
//	Phase 0 (A0): launch an IDs-Learning computation; take a pending
//	              external request into account (Request: Wait -> In).
//	Phase 1 (A1): when IDL terminates (leader and ID table now known),
//	              broadcast ASK via PIF.
//	Phase 2 (A2): when the ASK-PIF terminates, the feedbacks fill
//	              Privileges[]; a Winner broadcasts EXIT, forcing every
//	              other process back to Phase 0.
//	Phase 3 (A3): when the EXIT-PIF terminates, a Winner executes the
//	              critical section if requested, then releases: the leader
//	              advances Value itself, a non-leader broadcasts EXITCS
//	              (the leader advances Value on receiving it, A7).
//	Phase 4 (A4): when the EXITCS-PIF terminates, return to Phase 0.
//
// # Deviations from the paper's presentation (documented in DESIGN.md)
//
//   - Value arithmetic: the paper declares Value_p ∈ {0..n-1} but writes
//     the increment "mod (n+1)" — mutually inconsistent; we cycle mod n,
//     the only reading under which the leader round-robins over all n
//     candidates (itself plus n-1 channels), as Lemma 11's fairness
//     argument requires.
//   - Durational critical section: the paper's A3 executes <CS> inside one
//     atomic action, under which two processes can never be observed in
//     the critical section simultaneously and Specification 3 would be
//     vacuously checkable. We give the critical section a configurable
//     duration in activations (WithCSLength); entry/exit emit events the
//     specification checker consumes. An arbitrary initial configuration
//     may place a process inside the critical section (a "zombie",
//     footnote 1 of the paper): corruption generates those too.
package mutex

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/pif"
)

// Payload tags on the wire.
const (
	// TagAsk asks the system who is favoured (broadcast, phase 1).
	TagAsk = "ASK"
	// TagExit forces every other process back to phase 0 (broadcast,
	// phase 2).
	TagExit = "EXIT"
	// TagExitCS notifies the leader that the critical section was
	// released (broadcast, phase 3).
	TagExitCS = "EXITCS"
	// TagYes is the feedback granting the privilege.
	TagYes = "YES"
	// TagNo is the feedback denying the privilege.
	TagNo = "NO"
	// TagOK is the neutral acknowledgment feedback.
	TagOK = "OK"
)

// Option configures an ME machine.
type Option func(*ME)

// WithCSLength sets how many activations the critical section occupies
// (default 2). Zero makes entry and exit coincide in one atomic action,
// the paper's presentation.
func WithCSLength(k int) Option {
	return func(m *ME) {
		if k < 0 {
			panic(fmt.Sprintf("mutex: invalid CS length %d", k))
		}
		m.csLen = k
	}
}

// WithPIFOptions forwards options (e.g. the capacity bound) to both child
// PIF instances.
func WithPIFOptions(opts ...pif.Option) Option {
	return func(m *ME) { m.pifOpts = opts }
}

// ME is one process's instance of Protocol ME.
type ME struct {
	inst    string
	self    core.ProcID
	n       int
	id      int64
	csLen   int
	pifOpts []pif.Option

	// Request drives critical-section requests (input/output variable).
	Request core.ReqState
	// Phase is the five-phase loop counter.
	Phase uint8
	// Value designates the favoured process (meaningful at the leader):
	// 0 = self, k = local channel k.
	Value int
	// Privileges[q] records whether q's last ASK feedback was YES.
	Privileges []bool
	// InCS is the durational critical-section occupancy flag.
	InCS bool
	// CSLeft counts the remaining critical-section activations.
	CSLeft int
	// Served records whether the current occupancy serves a computation
	// (so release actions run at exit); an initial-configuration occupant
	// may have it either way.
	Served bool

	// IDL is the child IDs-Learning machine (instance inst+"/idl").
	IDL *idl.IDL
	// PIF is the child broadcast machine for ASK/EXIT/EXITCS (instance
	// inst+"/pif").
	PIF *pif.PIF

	// requested tracks a live external request. It is harness
	// instrumentation (ground truth for the checker), not protocol state:
	// corruption does not touch it.
	requested bool

	// CSBody, when non-nil, runs inside the critical section at entry.
	CSBody func()
}

var (
	_ core.Machine     = (*ME)(nil)
	_ core.Snapshotter = (*ME)(nil)
	_ core.Corruptible = (*ME)(nil)
)

// New returns an ME machine for process self with identifier id. Identifiers
// must be distinct across processes; the smallest one is the leader.
func New(inst string, self core.ProcID, n int, id int64, opts ...Option) *ME {
	if n < 2 {
		panic(fmt.Sprintf("mutex: need n >= 2, got %d", n))
	}
	m := &ME{
		inst:       inst,
		self:       self,
		n:          n,
		id:         id,
		csLen:      2,
		Request:    core.Done,
		Privileges: make([]bool, n),
	}
	for _, opt := range opts {
		opt(m)
	}
	m.IDL = idl.New(inst+"/idl", self, n, id, m.pifOpts...)
	m.PIF = pif.New(inst+"/pif", self, n, pif.Callbacks{
		OnBroadcast: m.onBroadcast,
		OnFeedback:  m.onFeedback,
	}, m.pifOpts...)
	return m
}

// Machines returns the full stack fragment in text order: ME, IDL, IDL's
// PIF, ME's PIF.
func (m *ME) Machines() core.Stack {
	return append(core.Stack{m}, append(m.IDL.Machines(), m.PIF)...)
}

// Instance returns the protocol instance ID.
func (m *ME) Instance() string { return m.inst }

// ID returns the process's constant identifier.
func (m *ME) ID() int64 { return m.id }

// localNum returns the local channel number of process q at this process:
// a bijection {peers} -> {1..n-1}, with 0 reserved for "self".
func (m *ME) localNum(q core.ProcID) int {
	return (int(q) - int(m.self) + m.n) % m.n
}

// Invoke submits an external request for the critical section. It reports
// false, without effect, while a request is pending or being served.
func (m *ME) Invoke(env core.Env) bool {
	if m.Request != core.Done {
		return false
	}
	m.Request = core.Wait
	m.requested = true
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: m.inst})
	return true
}

// Requested reports whether an external request is pending or being served
// (instrumentation; see the requested field).
func (m *ME) Requested() bool { return m.requested }

// Winner implements the paper's predicate: p may enter the critical
// section iff it is the leader favouring itself, or some feedback YES came
// from the process it learned to be the leader.
func (m *ME) Winner() bool {
	if m.IDL.MinID == m.id && m.Value == 0 {
		return true
	}
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		if m.Privileges[q] && m.IDL.IDTab[q] == m.IDL.MinID {
			return true
		}
	}
	return false
}

// release is the post-critical-section half of A3: the leader advances
// Value directly; anyone else notifies the leader with an EXITCS
// broadcast.
func (m *ME) release() {
	if m.IDL.MinID == m.id {
		m.Value = 1
	} else {
		m.PIF.Reset(core.Payload{Tag: TagExitCS})
	}
}

// Step runs the internal actions in text order: the critical-section
// occupancy action, then A0..A4.
func (m *ME) Step(env core.Env) bool {
	fired := false

	// Critical-section occupancy: a process inside the critical section
	// stays there for CSLeft further activations, then exits. Exit of a
	// serving occupancy completes the request (Request <- Done) and runs
	// the release half of A3.
	if m.InCS {
		if m.CSLeft > 0 {
			m.CSLeft--
			return true
		}
		m.InCS = false
		env.Emit(core.Event{Kind: core.EvExitCS, Peer: -1, Instance: m.inst})
		if m.Served {
			m.Served = false
			if m.Request == core.In {
				m.Request = core.Done
				m.requested = false
				env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: m.inst})
			}
			m.release()
			if m.Phase == 3 {
				m.Phase = 4
			}
		}
		return true
	}

	// A0 :: Phase = 0 -> launch IDL; take a pending request into account.
	if m.Phase == 0 {
		m.IDL.Reset()
		if m.Request == core.Wait {
			m.Request = core.In
			env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: m.inst})
		}
		m.Phase = 1
		fired = true
	}

	// A1 :: Phase = 1 and IDL.Request = Done -> broadcast ASK.
	if m.Phase == 1 && m.IDL.Done() {
		m.PIF.Reset(core.Payload{Tag: TagAsk})
		m.Phase = 2
		fired = true
	}

	// A2 :: Phase = 2 and PIF.Request = Done -> a winner broadcasts EXIT.
	if m.Phase == 2 && m.PIF.Done() {
		if m.Winner() {
			m.PIF.Reset(core.Payload{Tag: TagExit})
		}
		m.Phase = 3
		fired = true
	}

	// A3 :: Phase = 3 and PIF.Request = Done -> a winner executes the
	// critical section (if requested), then releases.
	if m.Phase == 3 && m.PIF.Done() && !m.InCS {
		if m.Winner() {
			if m.Request == core.In {
				note := ""
				if m.requested {
					note = core.NoteRequested
				}
				m.InCS = true
				m.Served = true
				m.CSLeft = m.csLen
				env.Emit(core.Event{Kind: core.EvEnterCS, Peer: -1, Instance: m.inst, Note: note})
				if m.CSBody != nil && m.requested {
					// The body is the work of the external request; an
					// entry fabricated by a corrupted Request = In
					// (footnote 1) has no application work attached.
					m.CSBody()
				}
				// The occupancy action takes over; Phase advances at exit.
				return true
			}
			m.release()
		}
		m.Phase = 4
		fired = true
	}

	// A4 :: Phase = 4 and PIF.Request = Done -> back to Phase 0.
	if m.Phase == 4 && m.PIF.Done() {
		m.Phase = 0
		fired = true
	}

	return fired
}

// onBroadcast implements the receive-brd actions A5 (ASK), A6 (EXIT), and
// A7 (EXITCS).
func (m *ME) onBroadcast(env core.Env, from core.ProcID, b core.Payload) core.Payload {
	switch b.Tag {
	case TagAsk:
		// A5: answer YES iff the sender is the favoured process.
		if m.Value == m.localNum(from) {
			return core.Payload{Tag: TagYes}
		}
		return core.Payload{Tag: TagNo}
	case TagExit:
		// A6: restart the phase loop.
		m.Phase = 0
		return core.Payload{Tag: TagOK}
	case TagExitCS:
		// A7: the favoured process released; advance the rotation.
		if m.Value == m.localNum(from) {
			m.Value = (m.Value + 1) % m.n
		}
		return core.Payload{Tag: TagOK}
	default:
		// Garbage broadcast from the initial configuration.
		return core.Payload{Tag: TagOK}
	}
}

// onFeedback implements the receive-fck actions A8 (YES), A9 (NO), and
// A10 (OK).
func (m *ME) onFeedback(_ core.Env, from core.ProcID, f core.Payload) {
	switch f.Tag {
	case TagYes:
		m.Privileges[from] = true
	case TagNo:
		m.Privileges[from] = false
	}
	// A10 (OK) and garbage: do nothing.
}

// Deliver handles messages addressed to the ME instance itself; the
// protocol communicates exclusively through its child PIFs, so only
// initial-configuration garbage arrives here. Consumed with no effect.
func (m *ME) Deliver(core.Env, core.ProcID, core.Message) {}

// AppendState appends a canonical encoding of the machine state (children
// encode themselves separately as part of the stack).
func (m *ME) AppendState(dst []byte) []byte {
	dst = append(dst, 'M', byte(m.Request), m.Phase, byte(m.Value))
	flags := byte(0)
	if m.InCS {
		flags |= 1
	}
	if m.Served {
		flags |= 2
	}
	dst = append(dst, flags, byte(m.CSLeft))
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		b := byte(0)
		if m.Privileges[q] {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// Corrupt overwrites every protocol variable with random values from its
// domain, including possibly placing the process inside the critical
// section (footnote 1's zombie). Children corrupt themselves separately
// as part of the stack; the instrumentation field requested is ground
// truth and survives.
func (m *ME) Corrupt(r core.Rand) {
	m.Request = core.ReqState(r.Intn(core.NumReqStates))
	m.Phase = uint8(r.Intn(5))
	m.Value = r.Intn(m.n)
	for q := 0; q < m.n; q++ {
		if q == int(m.self) {
			continue
		}
		m.Privileges[q] = r.Bool()
	}
	m.InCS = r.Intn(4) == 0
	if m.InCS {
		m.CSLeft = r.Intn(m.csLen + 1)
		m.Served = r.Bool()
	} else {
		m.CSLeft = 0
		m.Served = false
	}
}
