package mutex

import (
	"testing"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
)

// build assembles an n-process mutual exclusion deployment. IDs are
// i*10+3 so process 0 is the leader but IDs differ from indices.
func build(t *testing.T, n int, opts ...Option) ([]*ME, []core.Stack) {
	t.Helper()
	machines := make([]*ME, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = New("me", core.ProcID(i), n, int64(i*10+3), opts...)
		stacks[i] = machines[i].Machines()
	}
	return machines, stacks
}

// specs lists the wire domains of all three PIF instances in an ME stack.
func specs(m *ME) []config.InstanceSpec {
	return []config.InstanceSpec{
		{Instance: "me/idl/pif", FlagTop: m.IDL.PIF.FlagTop()},
		{Instance: "me/pif", FlagTop: m.PIF.FlagTop()},
	}
}

func TestLocalNumBijection(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 6; n++ {
		for self := 0; self < n; self++ {
			m := New("me", core.ProcID(self), n, int64(self))
			seen := make(map[int]bool)
			for q := 0; q < n; q++ {
				if q == self {
					continue
				}
				k := m.localNum(core.ProcID(q))
				if k < 1 || k >= n {
					t.Fatalf("n=%d self=%d q=%d: localNum=%d outside [1,%d)", n, self, q, k, n)
				}
				if seen[k] {
					t.Fatalf("n=%d self=%d: duplicate local number %d", n, self, k)
				}
				seen[k] = true
			}
		}
	}
}

func TestWinnerPredicate(t *testing.T) {
	t.Parallel()
	m := New("me", 1, 3, 20)
	// Case 1: believes itself leader and favours itself.
	m.IDL.MinID = 20
	m.Value = 0
	if !m.Winner() {
		t.Fatal("leader with Value=0 is not winner")
	}
	m.Value = 1
	if m.Winner() {
		t.Fatal("leader with Value!=0 is winner without privileges")
	}
	// Case 2: privilege from the process known to be the leader.
	m.IDL.MinID = 5
	m.IDL.IDTab[0] = 5
	m.Privileges[0] = true
	if !m.Winner() {
		t.Fatal("privilege from leader not honoured")
	}
	// Privilege from a non-leader does not count.
	m.Privileges[0] = false
	m.IDL.IDTab[2] = 99
	m.Privileges[2] = true
	if m.Winner() {
		t.Fatal("privilege from non-leader wrongly honoured")
	}
}

func TestSingleRequestorServed(t *testing.T) {
	t.Parallel()
	machines, stacks := build(t, 3)
	checker := NewCheckerFor(machines)
	net := sim.New(stacks, sim.WithSeed(11), sim.WithObserver(checker))
	if !machines[1].Invoke(net.Env(1)) {
		t.Fatal("Invoke rejected")
	}
	err := net.RunUntil(func() bool { return machines[1].Request == core.Done && !machines[1].Requested() }, 5_000_000)
	if err != nil {
		t.Fatalf("request never served: %v", err)
	}
	if checker.Entries() != 1 {
		t.Fatalf("served entries = %d, want 1", checker.Entries())
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// NewCheckerFor builds a MutexChecker primed with the initial CS
// occupants of the given machines.
func NewCheckerFor(machines []*ME) *spec.MutexChecker {
	c := spec.NewMutexChecker()
	for i, m := range machines {
		if m.InCS {
			c.PrimeZombie(core.ProcID(i))
		}
	}
	return c
}

func TestAllRequestorsServedCleanStart(t *testing.T) {
	t.Parallel()
	const n = 3
	machines, stacks := build(t, n)
	checker := NewCheckerFor(machines)
	net := sim.New(stacks, sim.WithSeed(21), sim.WithObserver(checker))
	for i := 0; i < n; i++ {
		if !machines[i].Invoke(net.Env(core.ProcID(i))) {
			t.Fatalf("Invoke at %d rejected", i)
		}
	}
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if m.Requested() {
				return false
			}
		}
		return true
	}, 20_000_000)
	if err != nil {
		t.Fatalf("not all requests served: %v (served entries so far: %d)", err, checker.Entries())
	}
	if checker.Entries() != n {
		t.Fatalf("served entries = %d, want %d", checker.Entries(), n)
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestSnapStabilizationRandomized is Theorem 4's statistical verification:
// from corrupted configurations with garbage-filled channels, every
// external request is served (Start), served requestors never overlap in
// the critical section (Correctness), and the run records the zombie
// activity separately.
func TestSnapStabilizationRandomized(t *testing.T) {
	t.Parallel()
	trials := 60
	if testing.Short() {
		trials = 10
	}
	const n = 3
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		machines, stacks := build(t, n)
		r := rng.New(rng.Mix(seed, 1789))
		net := sim.New(stacks, sim.WithSeed(seed))
		config.Corrupt(net, r, specs(machines[0]), config.Options{})
		checker := NewCheckerFor(machines)
		// Subscribe after priming zombies. The simulator copies its
		// observer list at construction, so rebuild with the checker.
		net = sim.New(stacks, sim.WithSeed(seed), sim.WithObserver(checker))
		config.FillChannels(net, r, specs(machines[0]), config.Options{})

		// Everyone requests as soon as their Request variable allows.
		requested := make([]bool, n)
		err := net.RunUntil(func() bool {
			allServed := true
			for i := 0; i < n; i++ {
				if !requested[i] {
					requested[i] = machines[i].Invoke(net.Env(core.ProcID(i)))
				}
				if !requested[i] || machines[i].Requested() {
					allServed = false
				}
			}
			return allServed
		}, 30_000_000)
		if err != nil {
			t.Fatalf("trial %d (seed %d): requests not all served: %v", trial, seed, err)
		}
		if v := checker.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: mutual exclusion violated: %v", trial, v)
		}
		if checker.Entries() < n {
			t.Fatalf("trial %d: only %d served entries, want >= %d", trial, checker.Entries(), n)
		}
	}
}

func TestRepeatedRequestsRotateFairly(t *testing.T) {
	t.Parallel()
	const n, rounds = 3, 4
	machines, stacks := build(t, n)
	checker := NewCheckerFor(machines)
	net := sim.New(stacks, sim.WithSeed(31), sim.WithObserver(checker))
	served := make([]int, n)
	requested := make([]bool, n)
	err := net.RunUntil(func() bool {
		done := true
		for i := 0; i < n; i++ {
			if served[i] >= rounds {
				continue
			}
			done = false
			if !requested[i] {
				requested[i] = machines[i].Invoke(net.Env(core.ProcID(i)))
			} else if !machines[i].Requested() {
				served[i]++
				requested[i] = false
			}
		}
		return done
	}, 60_000_000)
	if err != nil {
		t.Fatalf("rotation stalled: served=%v: %v", served, err)
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if got, want := checker.Entries(), n*rounds; got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
}

func TestZombieDoesNotBlockService(t *testing.T) {
	t.Parallel()
	// Place a zombie inside the critical section in the initial
	// configuration; a genuine request must still be served, and the
	// overlap must be tallied, not reported.
	machines, stacks := build(t, 3, WithCSLength(40))
	machines[2].InCS = true
	machines[2].CSLeft = 40
	machines[2].Served = false
	checker := NewCheckerFor(machines)
	net := sim.New(stacks, sim.WithSeed(41), sim.WithObserver(checker))
	if !machines[1].Invoke(net.Env(1)) {
		t.Fatal("Invoke rejected")
	}
	err := net.RunUntil(func() bool { return !machines[1].Requested() }, 20_000_000)
	if err != nil {
		t.Fatalf("request not served with zombie present: %v", err)
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("zombie overlap misreported as violation: %v", v)
	}
}

func TestLeaderValueRotates(t *testing.T) {
	t.Parallel()
	// With nobody requesting, the phase loop still runs and the leader's
	// Value must keep rotating (Lemma 11).
	machines, stacks := build(t, 3)
	net := sim.New(stacks, sim.WithSeed(51))
	leader := machines[0]
	seen := map[int]bool{leader.Value: true}
	for i := 0; i < 3_000_000 && len(seen) < 3; i++ {
		net.Step()
		seen[leader.Value] = true
	}
	if len(seen) < 3 {
		t.Fatalf("leader Value visited only %v in 3M steps", seen)
	}
}

func TestCSLengthZeroAtomic(t *testing.T) {
	t.Parallel()
	machines, stacks := build(t, 2, WithCSLength(0))
	checker := NewCheckerFor(machines)
	net := sim.New(stacks, sim.WithSeed(61), sim.WithObserver(checker))
	machines[1].Invoke(net.Env(1))
	err := net.RunUntil(func() bool { return !machines[1].Requested() }, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if checker.Entries() != 1 || len(checker.Violations()) != 0 {
		t.Fatalf("entries=%d violations=%v", checker.Entries(), checker.Violations())
	}
}

func TestCSBodyRuns(t *testing.T) {
	t.Parallel()
	machines, stacks := build(t, 2)
	ran := false
	machines[0].CSBody = func() { ran = true }
	net := sim.New(stacks, sim.WithSeed(71))
	machines[0].Invoke(net.Env(0))
	if err := net.RunUntil(func() bool { return !machines[0].Requested() }, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("critical-section body never executed")
	}
}

func TestCorruptStaysInDomain(t *testing.T) {
	t.Parallel()
	r := rng.New(9)
	for trial := 0; trial < 300; trial++ {
		m := New("me", 1, 4, 7)
		m.Corrupt(r)
		if m.Phase > 4 {
			t.Fatalf("Phase %d out of domain", m.Phase)
		}
		if m.Value < 0 || m.Value >= 4 {
			t.Fatalf("Value %d out of domain", m.Value)
		}
		if m.Request > core.Done {
			t.Fatalf("Request %d out of domain", m.Request)
		}
		if !m.InCS && (m.CSLeft != 0 || m.Served) {
			t.Fatal("CS bookkeeping inconsistent after corruption")
		}
	}
}

func TestCorruptPreservesInstrumentation(t *testing.T) {
	t.Parallel()
	m := New("me", 0, 2, 1)
	m.requested = true
	m.Corrupt(rng.New(4))
	if !m.Requested() {
		t.Fatal("corruption cleared the ground-truth requested flag")
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	machines, stacks := build(t, 2)
	net := sim.New(stacks)
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("first Invoke rejected")
	}
	if machines[0].Invoke(net.Env(0)) {
		t.Fatal("second Invoke accepted while pending")
	}
}

func TestAppendStateDistinguishes(t *testing.T) {
	t.Parallel()
	a := New("me", 0, 3, 1)
	b := New("me", 0, 3, 1)
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines encode differently")
	}
	b.Value = 2
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("Value change invisible in encoding")
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("n=1", func() { New("me", 0, 1, 5) })
	expectPanic("negative CS length", func() { New("me", 0, 2, 5, WithCSLength(-1)) })
}

func TestMachinesStackShape(t *testing.T) {
	t.Parallel()
	m := New("me", 0, 2, 5)
	stack := m.Machines()
	if len(stack) != 4 {
		t.Fatalf("stack has %d machines, want 4 (ME, IDL, IDL/PIF, ME/PIF)", len(stack))
	}
	wantInstances := []string{"me", "me/idl", "me/idl/pif", "me/pif"}
	for i, w := range wantInstances {
		if got := stack[i].Instance(); got != w {
			t.Fatalf("stack[%d] = %s, want %s", i, got, w)
		}
	}
}
