package mutex

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/sim"
)

// env returns a throwaway environment for direct action tests.
func testEnv(t *testing.T, n int) core.Env {
	t.Helper()
	machines, stacks := build(t, n)
	_ = machines
	return sim.New(stacks).Env(0)
}

func TestA5AskAnswersByFavour(t *testing.T) {
	t.Parallel()
	// n=4, self=1: local numbers are p2->1, p3->2, p0->3.
	m := New("me", 1, 4, 20)
	cases := []struct {
		value int
		from  core.ProcID
		want  string
	}{
		{1, 2, TagYes}, // favoured channel 1 = process 2
		{1, 3, TagNo},
		{2, 3, TagYes}, // favoured channel 2 = process 3
		{3, 0, TagYes}, // favoured channel 3 = process 0
		{0, 2, TagNo},  // favours itself: everyone else refused
	}
	for _, c := range cases {
		m.Value = c.value
		got := m.onBroadcast(nil, c.from, core.Payload{Tag: TagAsk})
		if got.Tag != c.want {
			t.Errorf("Value=%d ASK from %d: answered %s, want %s", c.value, c.from, got.Tag, c.want)
		}
	}
}

func TestA6ExitForcesPhaseZero(t *testing.T) {
	t.Parallel()
	m := New("me", 1, 3, 20)
	m.Phase = 3
	got := m.onBroadcast(nil, 0, core.Payload{Tag: TagExit})
	if m.Phase != 0 {
		t.Fatalf("Phase = %d after EXIT, want 0", m.Phase)
	}
	if got.Tag != TagOK {
		t.Fatalf("EXIT acknowledged with %s, want OK", got.Tag)
	}
}

func TestA7ExitCSAdvancesRotationOnlyForFavoured(t *testing.T) {
	t.Parallel()
	m := New("me", 0, 3, 5) // self=0: local numbers p1->1, p2->2
	m.Value = 1
	// EXITCS from the non-favoured process: ignored.
	m.onBroadcast(nil, 2, core.Payload{Tag: TagExitCS})
	if m.Value != 1 {
		t.Fatalf("Value = %d after non-favoured EXITCS, want 1", m.Value)
	}
	// EXITCS from the favoured process: rotation advances.
	m.onBroadcast(nil, 1, core.Payload{Tag: TagExitCS})
	if m.Value != 2 {
		t.Fatalf("Value = %d after favoured EXITCS, want 2", m.Value)
	}
	// Rotation wraps to 0 (the leader's own turn).
	m.Value = 2
	m.onBroadcast(nil, 2, core.Payload{Tag: TagExitCS})
	if m.Value != 0 {
		t.Fatalf("Value = %d after wrap, want 0", m.Value)
	}
}

func TestFeedbackSetsPrivileges(t *testing.T) {
	t.Parallel()
	m := New("me", 0, 3, 5)
	m.onFeedback(nil, 1, core.Payload{Tag: TagYes})
	if !m.Privileges[1] {
		t.Fatal("YES did not set the privilege")
	}
	m.onFeedback(nil, 1, core.Payload{Tag: TagNo})
	if m.Privileges[1] {
		t.Fatal("NO did not clear the privilege")
	}
	// OK and garbage leave privileges untouched.
	m.Privileges[2] = true
	m.onFeedback(nil, 2, core.Payload{Tag: TagOK})
	m.onFeedback(nil, 2, core.Payload{Tag: "garbage"})
	if !m.Privileges[2] {
		t.Fatal("OK/garbage feedback mutated privileges")
	}
}

func TestGarbageBroadcastAnsweredNeutrally(t *testing.T) {
	t.Parallel()
	m := New("me", 0, 2, 5)
	m.Phase = 2
	m.Value = 1
	got := m.onBroadcast(nil, 1, core.Payload{Tag: "garbage", Num: 3})
	if got.Tag != TagOK {
		t.Fatalf("garbage answered with %s, want OK", got.Tag)
	}
	if m.Phase != 2 || m.Value != 1 {
		t.Fatal("garbage broadcast mutated protocol state")
	}
}

func TestPhaseLoopAdvancesThroughAllPhases(t *testing.T) {
	t.Parallel()
	machines, stacks := build(t, 2)
	net := sim.New(stacks, sim.WithSeed(5))
	seen := make(map[uint8]bool)
	for i := 0; i < 200000 && len(seen) < 5; i++ {
		net.Step()
		seen[machines[1].Phase] = true
	}
	for phase := uint8(0); phase < 5; phase++ {
		if !seen[phase] {
			t.Fatalf("phase %d never visited: %v", phase, seen)
		}
	}
}

func TestNonRequestingWinnerReleases(t *testing.T) {
	t.Parallel()
	// A non-requesting leader that favours itself must advance Value at
	// A3 (release without critical section) — otherwise rotation stalls
	// (Lemma 11's first case).
	machines, stacks := build(t, 2)
	net := sim.New(stacks, sim.WithSeed(7))
	leader := machines[0]
	leader.Value = 0
	moved := false
	for i := 0; i < 200000; i++ {
		net.Step()
		if leader.Value != 0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("leader favouring itself never released (rotation stalled)")
	}
}

func TestExitDuringCSKeepsOccupancy(t *testing.T) {
	t.Parallel()
	// Receiving an EXIT broadcast while inside the critical section must
	// reset the phase but not evict the occupant: a process cannot be
	// yanked out of its critical section by a message.
	m := New("me", 1, 3, 20)
	m.InCS = true
	m.CSLeft = 5
	m.Phase = 3
	m.onBroadcast(nil, 0, core.Payload{Tag: TagExit})
	if !m.InCS || m.CSLeft != 5 {
		t.Fatal("EXIT broadcast evicted a critical-section occupant")
	}
	if m.Phase != 0 {
		t.Fatalf("Phase = %d, want 0", m.Phase)
	}
}

func TestServedExitAfterPhaseResetSkipsPhaseFour(t *testing.T) {
	t.Parallel()
	// If an EXIT reset the phase while a served occupant was inside, the
	// exit must not jump to phase 4 (that would skip the restarted cycle).
	machines, stacks := build(t, 2)
	net := sim.New(stacks)
	m := machines[0]
	m.InCS = true
	m.Served = true
	m.CSLeft = 0
	m.Request = core.In
	m.Phase = 1 // EXIT reset happened; cycle restarted
	net.Activate(0)
	if m.Phase == 4 {
		t.Fatal("exit jumped to phase 4 despite the phase reset")
	}
	if m.InCS {
		t.Fatal("occupant did not exit")
	}
}

func TestWinnerRequiresFreshPrivilegeFromLeader(t *testing.T) {
	t.Parallel()
	// Privilege from a process whose learned ID does not match minID must
	// not make a winner — even if every privilege bit is set.
	m := New("me", 2, 3, 30)
	m.IDL.MinID = 1
	for q := range m.Privileges {
		m.Privileges[q] = true
	}
	m.IDL.IDTab[0] = 99
	m.IDL.IDTab[1] = 98
	if m.Winner() {
		t.Fatal("winner without any privilege from the leader")
	}
	m.IDL.IDTab[1] = 1 // process 1 is the leader and said YES
	if !m.Winner() {
		t.Fatal("privilege from the leader not honoured")
	}
}

func TestEnvHelperCompiles(t *testing.T) {
	t.Parallel()
	if testEnv(t, 2) == nil {
		t.Fatal("nil env")
	}
}
