package snapstab

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
)

// Topology is the communication graph a cluster runs over: which process
// pairs share a channel. The zero value means "no explicit topology",
// which every cluster treats as the paper's fully-connected network —
// and treats byte-identically to an explicit Complete(n): executions,
// corruption streams, and statistics do not change when the complete
// graph is spelled out.
//
// Over a sparser graph all three substrates route strictly along edges:
// the simulator has no channel between non-neighbours, the runtime wires
// no link, and a UDP node never learns a non-neighbour's address.
type Topology struct {
	t *core.Topology
}

// topologySalt derives the generator streams of the seeded topology
// constructors from the caller's seed, keeping them independent of every
// other consumer of the same seed (the substrates use their own salts).
const topologySalt = 0x54 // 'T'

// Complete returns the fully-connected graph on n >= 2 processes — the
// paper's network, as an explicit value.
func Complete(n int) Topology { return Topology{core.Complete(n)} }

// Ring returns the cycle on n >= 2 processes (two processes degenerate
// to a single edge).
func Ring(n int) Topology { return Topology{core.Ring(n)} }

// Line returns the path 0-1-...-(n-1) on n >= 2 processes.
func Line(n int) Topology { return Topology{core.Line(n)} }

// Star returns the star on n >= 2 processes with process 0 at the
// center.
func Star(n int) Topology { return Topology{core.Star(n)} }

// RandomTree returns a uniformly attached random tree on n >= 2
// processes, deterministic in the seed.
func RandomTree(n int, seed uint64) Topology {
	return Topology{core.RandomTree(n, rng.New(rng.Mix(seed, topologySalt)))}
}

// GNP returns an Erdős–Rényi graph on n >= 2 processes where each
// possible edge exists independently with probability p, deterministic
// in the seed. The result may be disconnected; check Connected before
// expecting cluster-wide protocols to involve every process.
func GNP(n int, p float64, seed uint64) Topology {
	return Topology{core.GNP(n, p, rng.New(rng.Mix(seed, topologySalt)))}
}

// ParseTopology reads a graph from the graph.txt format: an "n <count>"
// header line followed by one "u v" edge per line, with blank lines and
// "#" comments ignored.
func ParseTopology(data []byte) (Topology, error) {
	t, err := core.ParseTopology(data)
	if err != nil {
		return Topology{}, err
	}
	return Topology{t}, nil
}

// LoadTopology reads a graph.txt file from disk.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("snapstab: load topology: %w", err)
	}
	t, err := ParseTopology(data)
	if err != nil {
		return Topology{}, fmt.Errorf("snapstab: load topology %s: %w", path, err)
	}
	return t, nil
}

// TopologyByName builds one of the named graph families on n processes:
// "complete", "ring", "line", "star", "tree" (seeded random tree), or
// "gnp:<p>" (seeded Erdős–Rényi with edge probability p). It is the
// grammar behind every command-line -topology flag.
func TopologyByName(name string, n int, seed uint64) (Topology, error) {
	switch lower := strings.ToLower(strings.TrimSpace(name)); {
	case lower == "complete":
		return Complete(n), nil
	case lower == "ring":
		return Ring(n), nil
	case lower == "line":
		return Line(n), nil
	case lower == "star":
		return Star(n), nil
	case lower == "tree":
		return RandomTree(n, seed), nil
	case strings.HasPrefix(lower, "gnp:"):
		p, err := strconv.ParseFloat(lower[len("gnp:"):], 64)
		if err != nil || p < 0 || p > 1 {
			return Topology{}, fmt.Errorf("snapstab: topology %q: edge probability must be in [0,1]", name)
		}
		return GNP(n, p, seed), nil
	}
	return Topology{}, fmt.Errorf("snapstab: unknown topology %q (want complete, ring, line, star, tree, or gnp:<p>)", name)
}

// ResolveTopology interprets a command-line topology specification: a
// path to a graph.txt file when one exists at spec, a TopologyByName
// family otherwise. The loaded graph must span exactly n processes.
func ResolveTopology(spec string, n int, seed uint64) (Topology, error) {
	if _, err := os.Stat(spec); err == nil {
		t, err := LoadTopology(spec)
		if err != nil {
			return Topology{}, err
		}
		if t.N() != n {
			return Topology{}, fmt.Errorf("snapstab: topology %s spans %d processes, cluster has %d", spec, t.N(), n)
		}
		return t, nil
	}
	return TopologyByName(spec, n, seed)
}

// IsZero reports whether t is the zero Topology (no explicit graph).
func (t Topology) IsZero() bool { return t.t == nil }

// N returns the number of processes (0 for the zero Topology).
func (t Topology) N() int {
	if t.t == nil {
		return 0
	}
	return t.t.N()
}

// EdgeCount returns the number of undirected edges.
func (t Topology) EdgeCount() int {
	if t.t == nil {
		return 0
	}
	return t.t.EdgeCount()
}

// Edges returns every undirected edge as an ascending (u, v) pair with
// u < v.
func (t Topology) Edges() [][2]int {
	if t.t == nil {
		return nil
	}
	edges := t.t.Edges()
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{int(e[0]), int(e[1])}
	}
	return out
}

// Degree returns process p's neighbour count.
func (t Topology) Degree(p int) int {
	if t.t == nil {
		return 0
	}
	return t.t.Degree(core.ProcID(p))
}

// Neighbors returns process p's neighbours in ascending order.
func (t Topology) Neighbors(p int) []int {
	if t.t == nil {
		return nil
	}
	ns := t.t.Neighbors(core.ProcID(p))
	out := make([]int, len(ns))
	for i, q := range ns {
		out[i] = int(q)
	}
	return out
}

// HasEdge reports whether processes u and v share a channel.
func (t Topology) HasEdge(u, v int) bool {
	if t.t == nil {
		return false
	}
	return t.t.HasEdge(core.ProcID(u), core.ProcID(v))
}

// Connected reports whether the graph is connected.
func (t Topology) Connected() bool { return t.t != nil && t.t.Connected() }

// IsTree reports whether the graph is a tree (connected, n-1 edges).
func (t Topology) IsTree() bool { return t.t != nil && t.t.IsTree() }

// IsComplete reports whether the graph is fully connected.
func (t Topology) IsComplete() bool { return t.t != nil && t.t.IsComplete() }

// String renders the graph in the canonical graph.txt format.
func (t Topology) String() string {
	if t.t == nil {
		return ""
	}
	return t.t.String()
}

// WithTopology routes the cluster over t instead of the default complete
// graph. An explicit Complete(n) behaves byte-identically to no topology
// at all. The graph must span exactly the cluster's process count (the
// substrate panics at construction otherwise). Protocols designed for the
// fully-connected network (IDs-Learning, mutual exclusion, reset,
// snapshot) reject sparser graphs at construction; PIF clusters run the
// computation over the initiator's neighbourhood; forwarding clusters
// require a tree.
func WithTopology(t Topology) Option {
	return func(o *options) { o.topology = t.t }
}

// requireCompleteTopology rejects sparser graphs for the clusters whose
// protocols assume the paper's fully-connected network.
func (o options) requireCompleteTopology(cluster string) {
	if o.topology != nil && !o.topology.IsComplete() {
		panic(fmt.Sprintf("snapstab: %s runs a fully-connected protocol; the %d-process topology with %d edges is not complete",
			cluster, o.topology.N(), o.topology.EdgeCount()))
	}
}
