package snapstab

// White-box tests for aborted-request cleanup: a request the caller was
// told failed must not leave its per-request state installed on the
// machine, or its effects would surface in a later, unrelated request.

import (
	"errors"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// TestAbortedAcquireClearsBody verifies a budget-aborted acquire
// uninstalls its critical-section body: the machine may keep the pending
// request (the model's business), but the failed caller's body must
// never run when that request is eventually served.
func TestAbortedAcquireClearsBody(t *testing.T) {
	t.Parallel()
	c := NewMutexCluster([]int64{4, 2}, WithStepBudget(40))
	defer c.Close()
	err := c.Acquire(0, func() { t.Error("body of a failed acquire ran") })
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget (budget 40 is far below an acquire)", err)
	}
	var body func()
	c.sub.Do(core.ProcID(0), func(core.Env) { body = c.machines[0].CSBody })
	if body != nil {
		t.Fatal("CSBody still installed after the aborted acquire")
	}
}

// TestAbortedBroadcastClearsSink verifies a budget-aborted broadcast
// uninstalls its feedback sink.
func TestAbortedBroadcastClearsSink(t *testing.T) {
	t.Parallel()
	c := NewPIFCluster(2, WithStepBudget(2))
	defer c.Close()
	if _, err := c.Broadcast(0, "x", 1); !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	var sink *feedbackSink
	c.sub.Do(core.ProcID(0), func(core.Env) { sink = c.active[0] })
	if sink != nil {
		t.Fatal("feedback sink still installed after the aborted broadcast")
	}
}

// TestZeroStepBudget verifies a degenerate WithStepBudget(0) keeps the
// pre-substrate behavior: the cluster constructs fine and the request
// reports ErrBudget instead of panicking.
func TestZeroStepBudget(t *testing.T) {
	t.Parallel()
	c := NewPIFCluster(2, WithStepBudget(0))
	defer c.Close()
	if _, err := c.Broadcast(0, "x", 1); !errors.Is(err, ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}
