package snapstab

import "context"

// Request is the handle of one asynchronous protocol request. It is
// created by the *Async methods, completes exactly once, and is safe to
// share across goroutines. The request keeps running on the cluster's
// substrate even if nobody waits on it; Close on the cluster aborts it.
//
// The typed request wrappers (BroadcastRequest, LearnRequest, ...) embed
// Request and add result accessors that are valid once the request has
// completed successfully.
type Request struct {
	done chan struct{}
	err  error // terminal error; written exactly once before done closes
	fail error // protocol-level failure recorded by the completion condition
}

// Done returns a channel that is closed when the request has completed
// (successfully or not). It is the select-friendly form of Wait.
func (r *Request) Done() <-chan struct{} { return r.done }

// Wait blocks until the request completes, returning its terminal error,
// or until ctx is done, returning ctx.Err(). A context cancellation
// abandons only this Wait: the request itself keeps running and can be
// waited on again.
func (r *Request) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return r.err
	case <-ctx.Done():
		// Completion wins over a racing cancellation.
		select {
		case <-r.done:
			return r.err
		default:
			return ctx.Err()
		}
	}
}

// completed reports whether the request has reached its terminal state.
// Result accessors gate on it: their fields are written by the
// completion condition in the substrate's atomic context, so reading
// them mid-flight would be an unsynchronized race.
func (r *Request) completed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Err returns the request's terminal error once it has completed, and
// nil while it is still in flight (and after a successful completion).
func (r *Request) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}
