package snapstab

import (
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/runtime"
	"github.com/snapstab/snapstab/internal/sim"
	tcp "github.com/snapstab/snapstab/internal/transport/tcp"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

// Substrate selects the execution engine a cluster runs on. The paper's
// guarantee — every request satisfied from an arbitrary initial
// configuration — is substrate-independent, and so is the cluster API:
// the same cluster code runs on every engine.
//
//   - Sim: the deterministic seeded simulator (default). Executions
//     replay exactly from (topology, options); Stats reports scheduler
//     counters; step budgets apply.
//   - Runtime: one goroutine per process with event-driven in-memory
//     delivery — real concurrency, not reproducible. Use context
//     deadlines instead of step budgets.
//   - UDP: one loopback socket per process exchanging wire-encoded
//     datagrams — the paper's concluding "future challenge". Natural
//     loss plus bounded mailboxes restoring the known capacity bound;
//     messages coalesce into wire v3 batch datagrams (WithBatch).
//   - TCP: one loopback listener per process with persistent
//     connections; bounded queues and mailboxes restore the model's
//     lossy channels at the stream's edges.
//   - TCPHost: one real process of a multi-daemon TCP fleet.
//   - Mux.Substrate(): a cluster attached as a wire v3 group on a
//     shared UDPMux/TCPMux socket layer.
//
// A Substrate value is a specification; the engine itself is built when
// the cluster is constructed and released by the cluster's Close.
type Substrate struct {
	name string
	// capacity gives the channel-capacity bound the protocol machines
	// must be built with; nil means the cluster's WithCapacity option.
	capacity func(o options) int
	// build constructs and starts the engine from one stack per process.
	build func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error)
}

// machineCap returns the capacity bound machines should declare (the
// flag domain is sized from it, see pif.WithCapacityBound).
func (s Substrate) machineCap(o options) int {
	if s.capacity != nil {
		return s.capacity(o)
	}
	return o.capacity
}

// Sim selects the deterministic simulator: the substrate of the paper's
// model in its purest form, and of every experiment. WithSeed,
// WithLossRate, WithCapacity, and WithStepBudget all apply.
func Sim() Substrate {
	return Substrate{
		name: "sim",
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			sopts := []sim.Option{
				sim.WithSeed(o.seed),
				sim.WithLossRate(o.lossRate),
				sim.WithCapacity(o.capacity),
				sim.WithAwaitBudget(o.maxSteps),
			}
			if o.topology != nil {
				sopts = append(sopts, sim.WithTopology(o.topology))
			}
			if o.faults != nil {
				sopts = append(sopts, sim.WithFaults(o.faults))
			}
			for _, ob := range obs {
				sopts = append(sopts, sim.WithObserver(ob))
			}
			return sim.New(stacks, sopts...), nil
		},
	}
}

// Runtime selects the concurrent in-memory engine: one goroutine per
// process, per-link bounded capacity, event-driven delivery. WithCapacity
// and WithLossRate apply; WithSeed seeds only corruption (executions are
// genuinely nondeterministic) and WithStepBudget is ignored — bound
// requests with Request.Wait contexts instead.
func Runtime() Substrate {
	return Substrate{
		name: "runtime",
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			ropts := []runtime.Option{
				runtime.WithCapacity(o.capacity),
				runtime.WithLossRate(o.lossRate),
			}
			if o.topology != nil {
				ropts = append(ropts, runtime.WithTopology(o.topology))
			}
			if o.faults != nil {
				ropts = append(ropts, runtime.WithFaults(o.faults))
			}
			for _, ob := range obs {
				ropts = append(ropts, runtime.WithObserver(ob))
			}
			e := runtime.New(stacks, ropts...)
			e.Start()
			return e, nil
		},
	}
}

// UDP selects the loopback datagram transport: one socket per process,
// wire-encoded messages, natural loss, bounded receive mailboxes. The
// machines are built with the transport's conservative assumed capacity
// bound (or WithCapacity, if larger); WithLossRate and WithStepBudget are
// ignored — UDP loses messages on its own, and requests are bounded with
// Request.Wait contexts. Socket binding happens at cluster construction
// and panics on failure.
func UDP() Substrate {
	return Substrate{
		name: "udp",
		capacity: func(o options) int {
			if o.capacity > udp.DefaultAssumedCapacity {
				return o.capacity
			}
			return udp.DefaultAssumedCapacity
		},
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			uopts := make([]udp.Option, 0, len(obs)+2)
			for _, ob := range obs {
				uopts = append(uopts, udp.WithObserver(ob))
			}
			if o.batch > 0 {
				uopts = append(uopts, udp.WithBatch(o.batch))
			}
			if o.topology != nil {
				uopts = append(uopts, udp.WithTopology(o.topology))
			}
			if o.faults != nil {
				uopts = append(uopts, udp.WithFaults(o.faults))
			}
			return udp.NewCluster(stacks, uopts...)
		},
	}
}

// tcpOptions assembles the transport options shared by TCP and TCPHost.
func tcpOptions(o options, obs []core.Observer, extra ...tcp.Option) []tcp.Option {
	topts := append([]tcp.Option(nil), extra...)
	for _, ob := range obs {
		topts = append(topts, tcp.WithObserver(ob))
	}
	if o.batch > 0 {
		topts = append(topts, tcp.WithBatch(o.batch))
	}
	if o.topology != nil {
		topts = append(topts, tcp.WithTopology(o.topology))
	}
	if o.faults != nil {
		topts = append(topts, tcp.WithFaults(o.faults))
	}
	return topts
}

// tcpCapacity is the machine capacity bound for the TCP substrates: the
// transport's conservative assumed bound, or WithCapacity if larger.
func tcpCapacity(o options) int {
	if o.capacity > tcp.DefaultAssumedCapacity {
		return o.capacity
	}
	return tcp.DefaultAssumedCapacity
}

// TCP selects the loopback stream transport: one listener per process,
// persistent connections carrying length-prefixed wire frames, redial
// with backoff on connection loss. TCP delivers reliably per connection,
// so the transport restores the model's lossy bounded channels at its
// edges: bounded outbound queues (overflow drops at the sender), bounded
// receive mailboxes (lose-on-full), and connection loss as message loss.
// The machines are built with the transport's conservative assumed
// capacity bound (or WithCapacity, if larger); WithLossRate and
// WithStepBudget are ignored — bound requests with Request.Wait contexts.
// Listener binding happens at cluster construction and panics on failure.
func TCP() Substrate {
	return Substrate{
		name:     "tcp",
		capacity: tcpCapacity,
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			return tcp.NewCluster(stacks, tcpOptions(o, obs)...)
		},
	}
}

// TCPFleet describes one daemon's place in a multi-host TCP fleet, for
// TCPHost.
type TCPFleet struct {
	// Self is the process this OS process hosts (the cluster's other
	// processes run in other daemons).
	Self int
	// Listen is the local listen address; port 0 lets the kernel pick.
	Listen string
	// Peers maps every process ID to its advertised address (entry Self
	// is ignored). Length must equal the cluster size. An empty entry
	// leaves that link unwired.
	Peers []string
}

// TCPHost selects single-process fleet hosting: the cluster API drives
// ONE process over TCP while the rest of the fleet runs in other OS
// processes (snapd daemons) built from the same cluster parameters.
// Every cluster method that targets another daemon's process returns an
// error wrapping ErrRemoteProcess — issue those requests at that
// process's daemon. Whole-cluster seeded operations (CorruptEverything)
// remain fleet-deterministic: each daemon holds inert copies of the
// remote stacks so the seeded draws line up across the fleet.
func TCPHost(f TCPFleet) Substrate {
	return Substrate{
		name:     "tcp-host",
		capacity: tcpCapacity,
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			cfg := tcp.HostConfig{
				Self:   core.ProcID(f.Self),
				Listen: f.Listen,
				Peers:  f.Peers,
			}
			return tcp.NewHost(cfg, stacks, tcpOptions(o, obs)...)
		},
	}
}

// ErrRemoteProcess is returned (wrapped) by requests addressed to a
// process hosted by another daemon on the TCPHost substrate.
var ErrRemoteProcess = tcp.ErrRemoteProcess

// WithSubstrate selects the execution substrate (default Sim()).
func WithSubstrate(s Substrate) Option {
	return func(o *options) { o.substrate = s }
}

// capacityBound is the pif option every cluster constructor derives from
// the selected substrate.
func capacityBound(o options) pif.Option {
	return pif.WithCapacityBound(o.substrate.machineCap(o))
}
