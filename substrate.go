package snapstab

import (
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/runtime"
	"github.com/snapstab/snapstab/internal/sim"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

// Substrate selects the execution engine a cluster runs on. The paper's
// guarantee — every request satisfied from an arbitrary initial
// configuration — is substrate-independent, and so is the cluster API:
// the same cluster code runs on all three engines.
//
//   - Sim: the deterministic seeded simulator (default). Executions
//     replay exactly from (topology, options); Stats reports scheduler
//     counters; step budgets apply.
//   - Runtime: one goroutine per process with event-driven in-memory
//     delivery — real concurrency, not reproducible. Use context
//     deadlines instead of step budgets.
//   - UDP: one loopback socket per process exchanging wire-encoded
//     datagrams — the paper's concluding "future challenge". Natural
//     loss plus bounded mailboxes restoring the known capacity bound.
//
// A Substrate value is a specification; the engine itself is built when
// the cluster is constructed and released by the cluster's Close.
type Substrate struct {
	name string
	// capacity gives the channel-capacity bound the protocol machines
	// must be built with; nil means the cluster's WithCapacity option.
	capacity func(o options) int
	// build constructs and starts the engine from one stack per process.
	build func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error)
}

// machineCap returns the capacity bound machines should declare (the
// flag domain is sized from it, see pif.WithCapacityBound).
func (s Substrate) machineCap(o options) int {
	if s.capacity != nil {
		return s.capacity(o)
	}
	return o.capacity
}

// Sim selects the deterministic simulator: the substrate of the paper's
// model in its purest form, and of every experiment. WithSeed,
// WithLossRate, WithCapacity, and WithStepBudget all apply.
func Sim() Substrate {
	return Substrate{
		name: "sim",
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			sopts := []sim.Option{
				sim.WithSeed(o.seed),
				sim.WithLossRate(o.lossRate),
				sim.WithCapacity(o.capacity),
				sim.WithAwaitBudget(o.maxSteps),
			}
			if o.topology != nil {
				sopts = append(sopts, sim.WithTopology(o.topology))
			}
			if o.faults != nil {
				sopts = append(sopts, sim.WithFaults(o.faults))
			}
			for _, ob := range obs {
				sopts = append(sopts, sim.WithObserver(ob))
			}
			return sim.New(stacks, sopts...), nil
		},
	}
}

// Runtime selects the concurrent in-memory engine: one goroutine per
// process, per-link bounded capacity, event-driven delivery. WithCapacity
// and WithLossRate apply; WithSeed seeds only corruption (executions are
// genuinely nondeterministic) and WithStepBudget is ignored — bound
// requests with Request.Wait contexts instead.
func Runtime() Substrate {
	return Substrate{
		name: "runtime",
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			ropts := []runtime.Option{
				runtime.WithCapacity(o.capacity),
				runtime.WithLossRate(o.lossRate),
			}
			if o.topology != nil {
				ropts = append(ropts, runtime.WithTopology(o.topology))
			}
			if o.faults != nil {
				ropts = append(ropts, runtime.WithFaults(o.faults))
			}
			for _, ob := range obs {
				ropts = append(ropts, runtime.WithObserver(ob))
			}
			e := runtime.New(stacks, ropts...)
			e.Start()
			return e, nil
		},
	}
}

// UDP selects the loopback datagram transport: one socket per process,
// wire-encoded messages, natural loss, bounded receive mailboxes. The
// machines are built with the transport's conservative assumed capacity
// bound (or WithCapacity, if larger); WithLossRate and WithStepBudget are
// ignored — UDP loses messages on its own, and requests are bounded with
// Request.Wait contexts. Socket binding happens at cluster construction
// and panics on failure.
func UDP() Substrate {
	return Substrate{
		name: "udp",
		capacity: func(o options) int {
			if o.capacity > udp.DefaultAssumedCapacity {
				return o.capacity
			}
			return udp.DefaultAssumedCapacity
		},
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			uopts := make([]udp.Option, 0, len(obs)+1)
			for _, ob := range obs {
				uopts = append(uopts, udp.WithObserver(ob))
			}
			if o.topology != nil {
				uopts = append(uopts, udp.WithTopology(o.topology))
			}
			if o.faults != nil {
				uopts = append(uopts, udp.WithFaults(o.faults))
			}
			return udp.NewCluster(stacks, uopts...)
		},
	}
}

// WithSubstrate selects the execution substrate (default Sim()).
func WithSubstrate(s Substrate) Option {
	return func(o *options) { o.substrate = s }
}

// capacityBound is the pif option every cluster constructor derives from
// the selected substrate.
func capacityBound(o options) pif.Option {
	return pif.WithCapacityBound(o.substrate.machineCap(o))
}
