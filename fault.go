package snapstab

import (
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// This file is the public face of the fault-injection plane (DESIGN.md
// §9): mirror types over core.FaultPlan, the WithFaults cluster option,
// and the FaultStats accessor. The same plan value drives every
// substrate — the deterministic simulator applies it at Step delivery
// (replaying exactly from the seed), the runtime at each receiver's link
// table, and the network transports (UDP and TCP, dedicated or muxed) at
// the mailbox boundary, per logical message regardless of how messages
// were batched into wire frames (reproducible decision streams under
// real concurrency).

// LinkFaults is the fault policy of one directed link (or the plan-wide
// default): independent probabilities, all in [0, 1), applied to each
// in-transit message at the delivery boundary.
type LinkFaults struct {
	// DropRate drops the message (link loss).
	DropRate float64
	// DupRate delivers the message twice.
	DupRate float64
	// ReorderRate holds the message back and releases it behind the next
	// message on its link — an adjacent FIFO violation.
	ReorderRate float64
	// DelayRate holds the message for DelayTicks ticks.
	DelayRate float64
	// DelayTicks is how long a delayed message is held (simulator: in
	// scheduler steps; runtime/UDP: in FaultPlan.Unit of wall time).
	DelayTicks int64
	// CorruptRate garbles the message's payloads and handshake fields,
	// keeping it routable — garbage the protocols must reject, not mere
	// loss.
	CorruptRate float64
}

// Link selects one directed physical link for a per-link policy override.
type Link struct {
	From, To int
}

// PartitionWindow splits the cluster for [From, Until) ticks: every
// message crossing between GroupA and the rest is dropped. The window's
// end is the heal.
type PartitionWindow struct {
	From, Until int64
	// GroupA is one side of the partition; every process not listed is on
	// the other side.
	GroupA []int
}

// CrashWindow silences one process for [From, Until) ticks: it takes no
// actions and arriving messages are consumed with no effect. At Until it
// resumes with its state intact — a crash followed by a warm restart,
// which snap-stabilization absorbs like any other transient fault.
type CrashWindow struct {
	Proc        int
	From, Until int64
}

// FaultPlan is one complete adversarial schedule for a cluster: per-link
// policies plus partition and crash-restart windows, all rooted in one
// seed. The zero value injects nothing (and is free: executions are
// byte-identical to a cluster without a plan). See DESIGN.md §9 for the
// per-substrate determinism contract.
type FaultPlan struct {
	// Seed roots every fault decision. On the Sim substrate the whole
	// run — faults included — replays exactly from (cluster options,
	// plan); on Runtime and UDP the per-receiver decision streams are
	// reproducible but their interleaving is real concurrency.
	Seed uint64
	// Default applies to every directed link without an override.
	Default LinkFaults
	// Links overrides the default per directed link.
	Links map[Link]LinkFaults
	// Partitions are the scheduled split-brain windows.
	Partitions []PartitionWindow
	// Crashes are the scheduled crash-restart windows.
	Crashes []CrashWindow
	// Unit is the tick length on the real-time substrates (default 1ms).
	// The simulator ignores it: one tick is one scheduler step.
	Unit time.Duration
}

// internal converts the public plan to the core representation.
func (p FaultPlan) internal() *core.FaultPlan {
	out := &core.FaultPlan{
		Seed:    p.Seed,
		Default: core.LinkFaults(p.Default),
		Unit:    p.Unit,
	}
	if len(p.Links) > 0 {
		out.Links = make(map[core.LinkSel]core.LinkFaults, len(p.Links))
		for sel, f := range p.Links {
			out.Links[core.LinkSel{From: core.ProcID(sel.From), To: core.ProcID(sel.To)}] = core.LinkFaults(f)
		}
	}
	for _, w := range p.Partitions {
		cw := core.PartitionWindow{From: w.From, Until: w.Until}
		for _, q := range w.GroupA {
			cw.GroupA = append(cw.GroupA, core.ProcID(q))
		}
		out.Partitions = append(out.Partitions, cw)
	}
	for _, w := range p.Crashes {
		out.Crashes = append(out.Crashes, core.CrashWindow{Proc: core.ProcID(w.Proc), From: w.From, Until: w.Until})
	}
	return out
}

// WithFaults installs a fault-injection plan on the cluster's substrate.
// An invalid plan (a rate outside [0,1), a window ending before it
// starts) panics at cluster construction, like the other option
// validations.
func WithFaults(plan FaultPlan) Option {
	return func(o *options) { o.faults = plan.internal() }
}

// FaultStats counts the faults injected by the cluster's FaultPlan, by
// category; all zero when no plan is installed.
type FaultStats struct {
	// Drops counts messages dropped by DropRate.
	Drops int64
	// Duplicates counts extra copies delivered by DupRate.
	Duplicates int64
	// Reorders counts messages held back by ReorderRate.
	Reorders int64
	// Delays counts messages held back by DelayRate.
	Delays int64
	// Corrupts counts messages garbled by CorruptRate.
	Corrupts int64
	// PartitionDrops counts messages dropped crossing an open partition.
	PartitionDrops int64
	// CrashDrops counts messages consumed by a process inside a crash
	// window.
	CrashDrops int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.Drops + s.Duplicates + s.Reorders + s.Delays + s.Corrupts +
		s.PartitionDrops + s.CrashDrops
}

// publicFaultStats mirrors the core counters into the façade type. The
// direct conversion fails to compile if the two counter sets ever
// diverge.
func publicFaultStats(s core.FaultStats) FaultStats {
	return FaultStats(s)
}

// FaultStats returns the injected-fault counters for the whole cluster
// lifetime, aggregated across processes on the concurrent substrates.
// Safe to call while requests are in flight.
func (c *clusterCore) FaultStats() FaultStats {
	var agg core.FaultStats
	switch {
	case c.simNet != nil:
		c.simNet.Sync(func() { agg = c.simNet.Stats().Faults })
	case c.rtNet != nil:
		agg = c.rtNet.FaultStats()
	case c.udpNet != nil:
		for _, s := range c.udpNet.NodeStats() {
			agg.Add(s.Faults)
		}
	default:
		// Network substrates beyond UDP (TCP cluster and host) surface
		// their injector counters through the transport-stats interface.
		if ts, ok := c.sub.(core.TransportStatser); ok {
			for _, s := range ts.TransportStats() {
				agg.Add(s.Faults)
			}
		}
	}
	return publicFaultStats(agg)
}
