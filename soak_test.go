package snapstab_test

import (
	"testing"

	snapstab "github.com/snapstab/snapstab"
)

// TestSoak is the long-haul confidence run: many corrupted clusters, many
// interleaved requests across all four protocols, every outcome verified.
// Skipped under -short; scaled by design to a couple of minutes.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	t.Parallel()

	t.Run("pif", func(t *testing.T) {
		t.Parallel()
		for seed := uint64(1); seed <= 150; seed++ {
			n := 2 + int(seed%5) // 2..6
			loss := float64(seed%3) * 0.15
			c := snapstab.NewPIFCluster(n, snapstab.WithSeed(seed), snapstab.WithLossRate(loss))
			c.CorruptEverything(seed * 7)
			for r := int64(0); r < 3; r++ {
				fb, err := c.Broadcast(int(r)%n, "soak", int64(seed)*10+r)
				if err != nil {
					t.Fatalf("seed %d round %d: %v", seed, r, err)
				}
				if len(fb) != n-1 {
					t.Fatalf("seed %d round %d: %d feedbacks, want %d", seed, r, len(fb), n-1)
				}
				want := int64(seed)*10 + r
				for _, f := range fb {
					if f.Value.Num/1000 != want {
						t.Fatalf("seed %d round %d: feedback %v not derived from this broadcast", seed, r, f.Value)
					}
				}
			}
			c.Close()
		}
	})

	t.Run("idl", func(t *testing.T) {
		t.Parallel()
		for seed := uint64(1); seed <= 100; seed++ {
			n := 2 + int(seed%4)
			ids := make([]int64, n)
			min := int64(1 << 30)
			for i := range ids {
				ids[i] = int64((uint64(i)*2654435761 + seed*97) % 10000)
				if ids[i] < min {
					min = ids[i]
				}
			}
			c := snapstab.NewIDCluster(ids, snapstab.WithSeed(seed))
			c.CorruptEverything(seed)
			got, table, err := c.Learn(int(seed) % n)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got != min {
				t.Fatalf("seed %d: minID %d, want %d (table %v)", seed, got, min, table)
			}
			c.Close()
		}
	})

	t.Run("mutex", func(t *testing.T) {
		t.Parallel()
		for seed := uint64(1); seed <= 40; seed++ {
			n := 2 + int(seed%3)
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(i*13 + int(seed%7) + 1)
			}
			c := snapstab.NewMutexCluster(ids, snapstab.WithSeed(seed))
			c.CorruptEverything(seed * 3)
			procs := make([]int, n)
			for i := range procs {
				procs[i] = i
			}
			if err := c.AcquireAll(procs, nil); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if v := c.Violations(); len(v) != 0 {
				t.Fatalf("seed %d: %v", seed, v)
			}
			c.Close()
		}
	})

	t.Run("reset", func(t *testing.T) {
		t.Parallel()
		for seed := uint64(1); seed <= 60; seed++ {
			n := 2 + int(seed%4)
			c := snapstab.NewResetCluster(n, nil, snapstab.WithSeed(seed))
			c.CorruptEverything(seed * 5)
			if _, err := c.Reset(int(seed) % n); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			c.Close()
		}
	})
}
