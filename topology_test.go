package snapstab

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTopologyByNameGrammar(t *testing.T) {
	t.Parallel()
	good := map[string]func(Topology) bool{
		"complete": Topology.IsComplete,
		"ring":     func(tp Topology) bool { return tp.EdgeCount() == 6 },
		"line":     Topology.IsTree,
		"star":     func(tp Topology) bool { return tp.Degree(0) == 5 },
		"tree":     Topology.IsTree,
		"gnp:0.5":  func(tp Topology) bool { return tp.N() == 6 },
		" Ring ":   func(tp Topology) bool { return tp.EdgeCount() == 6 }, // case- and space-insensitive
	}
	for name, check := range good {
		tp, err := TopologyByName(name, 6, 7)
		if err != nil {
			t.Errorf("TopologyByName(%q): %v", name, err)
			continue
		}
		if !check(tp) {
			t.Errorf("TopologyByName(%q) produced the wrong graph:\n%s", name, tp)
		}
	}
	for _, name := range []string{"", "mesh", "gnp:", "gnp:1.5", "gnp:x"} {
		if _, err := TopologyByName(name, 6, 7); err == nil {
			t.Errorf("TopologyByName(%q) accepted an invalid name", name)
		}
	}
	// Seeded families are deterministic in the seed.
	a, _ := TopologyByName("tree", 9, 42)
	b, _ := TopologyByName("tree", 9, 42)
	if a.String() != b.String() {
		t.Error("TopologyByName(tree) is not deterministic in its seed")
	}
}

func TestResolveTopologyFileVsName(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.txt")
	if err := os.WriteFile(path, []byte(Ring(5).String()), 0o644); err != nil {
		t.Fatal(err)
	}
	tp, err := ResolveTopology(path, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.EdgeCount() != 5 {
		t.Errorf("loaded graph has %d edges, want 5", tp.EdgeCount())
	}
	if _, err := ResolveTopology(path, 6, 1); err == nil {
		t.Error("ResolveTopology accepted a file with the wrong process count")
	}
	tp, err = ResolveTopology("star", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Degree(0) != 3 {
		t.Error("ResolveTopology did not fall back to the name grammar")
	}
	if _, err := ResolveTopology(filepath.Join(dir, "missing.txt"), 4, 1); err == nil {
		t.Error("ResolveTopology accepted a missing-file path as a name")
	}
}

func TestTopologyZeroValueIsSafe(t *testing.T) {
	t.Parallel()
	var z Topology
	if !z.IsZero() || z.N() != 0 || z.EdgeCount() != 0 || z.Edges() != nil ||
		z.Degree(0) != 0 || z.Neighbors(0) != nil || z.HasEdge(0, 1) ||
		z.Connected() || z.IsTree() || z.IsComplete() || z.String() != "" {
		t.Error("zero Topology accessors are not inert")
	}
}

func TestTopologyRoundTripThroughFacade(t *testing.T) {
	t.Parallel()
	orig := RandomTree(11, 99)
	back, err := ParseTopology([]byte(orig.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Error("façade parse/serialize round-trip is not exact")
	}
}
