// Package snapstab is a Go implementation of the snap-stabilizing
// message-passing protocols of Delaët, Devismes, Nesterenko & Tixeuil,
// "Snap-Stabilization in Message-Passing Systems" (PODC 2008 / INRIA
// RR-6446): Propagation of Information with Feedback (PIF), IDs-Learning,
// and mutual exclusion over fully-connected networks with bounded-capacity
// lossy FIFO channels.
//
// A snap-stabilizing protocol satisfies its specification for every
// request, starting from an ARBITRARY initial configuration — corrupted
// process memories and corrupted channel contents alike. There is no
// convergence period during which requests may be served incorrectly
// (that weaker guarantee is self-stabilization).
//
// This package is the high-level façade: it assembles clusters on a
// chosen execution substrate, optionally corrupts them, and exposes
// request APIs in two forms. The synchronous calls (Broadcast, Learn,
// Acquire, Reset, Collect) submit one request and block to its decision.
// Their *Async twins return a *Request handle immediately and are safe to
// issue concurrently from many initiator processes — the natural shape on
// the concurrent substrates:
//
//	cluster := snapstab.NewPIFCluster(5, snapstab.WithSubstrate(snapstab.Runtime()))
//	defer cluster.Close()
//	cluster.CorruptEverything(42) // adversarial initial configuration
//	req := cluster.BroadcastAsync(0, "hello", 7)
//	if err := req.Wait(ctx); err == nil {
//		_ = req.Feedbacks() // every process's acknowledgment of THIS broadcast
//	}
//
// The default substrate is the deterministic simulator (Sim()), under
// which the synchronous calls behave exactly as in earlier revisions. The
// underlying machines, substrates, checkers, model checker, and adversary
// constructions live in the internal packages and are exercised by the
// tools under cmd/ (snapsim, snapcheck, snapbench, snapnet, snapchaos,
// and the snapd/snapctl deployment pair).
package snapstab

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/mutex"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/spec"
)

// Payload is an application datum carried by broadcasts and feedback.
type Payload struct {
	// Tag names the datum.
	Tag string
	// Num is a numeric argument.
	Num int64
}

func (p Payload) internal() core.Payload { return core.Payload{Tag: p.Tag, Num: p.Num} }

// Options configure a cluster.
type options struct {
	lossRate  float64
	seed      uint64
	capacity  int
	maxSteps  int
	csLength  int
	onReceive func(proc int, from int, b Payload) Payload
	// onReceiveTyped holds a WithReceiverT handler. Option functions are
	// not generic, so the handler crosses the options as `any` and the
	// generic constructor asserts it back to func(proc, from int, b T) T.
	onReceiveTyped any
	substrate      Substrate
	// batch is the WithBatch coalescing ceiling for the UDP transport
	// (0 = the transport's default).
	batch  int
	faults *core.FaultPlan
	// topology is the communication graph (nil = the paper's complete
	// network; an explicit complete graph behaves byte-identically).
	topology *core.Topology
	// eventHooks are WithEventHook subscribers, wrapped into substrate
	// observers at cluster construction.
	eventHooks []func(ObservedEvent)
}

// ObservedEvent is one protocol event surfaced to WithEventHook
// subscribers: the public projection of the internal event stream that
// spec checkers and traces consume.
type ObservedEvent struct {
	// Kind names the event ("send", "deliver", "lose", "start", "decide",
	// "enter-cs", "fwd-deliver", ...).
	Kind string
	// Proc is the process at which the event occurred.
	Proc int
	// Peer is the other endpoint when the event involves a message, -1
	// otherwise.
	Peer int
	// Instance is the protocol instance involved, when meaningful.
	Instance string
}

// WithEventHook subscribes fn to the cluster's protocol event stream —
// the raw material for monitoring (cmd/snapd feeds its Prometheus
// protocol-phase counters from it). fn runs inside the execution engine,
// concurrently on the concurrent substrates: it must be fast and
// goroutine-safe, and must not call back into the cluster.
func WithEventHook(fn func(ObservedEvent)) Option {
	return func(o *options) { o.eventHooks = append(o.eventHooks, fn) }
}

// Option configures a cluster.
type Option func(*options)

// WithLossRate makes links drop in-transit messages with probability p
// (0 <= p < 1). Applies to the Sim and Runtime substrates; UDP loses
// messages naturally.
func WithLossRate(p float64) Option { return func(o *options) { o.lossRate = p } }

// WithSeed seeds the deterministic scheduler (default 1). Two Sim
// clusters built with identical options replay identical executions; on
// the concurrent substrates only corruption derives from the seed.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithCapacity sets the known per-channel capacity bound c >= 1 (default
// 1, the paper's setting). The protocols size their handshake flag domain
// to {0..2c+2} automatically. The UDP substrate enforces its own larger
// conservative bound when this one is smaller.
func WithCapacity(c int) Option { return func(o *options) { o.capacity = c } }

// WithBatch tunes the transports' syscall amortization; the in-memory
// substrates (Sim, Runtime) have no wire and ignore it. On UDP it sets
// how many messages may coalesce into one wire v3 batch datagram
// (default 16): batches flush when full, at the end of every atomic
// protocol section, and on the transport's sweep tick, so raising the
// ceiling amortizes syscalls without delaying any message past the
// tick. WithBatch(1) disables coalescing — every message travels alone
// in the bare wire v1/v2 framing, byte-compatible with peers that
// predate the v3 batch frame. On TCP it bounds how many queued frames
// one vectored write may carry (default 32); the bytes on the wire are
// identical at every setting. On a mux, pass it to UDPMux/TCPMux
// instead — the sockets are shared, so the knob cannot vary per
// attached cluster.
func WithBatch(k int) Option { return func(o *options) { o.batch = k } }

// WithStepBudget bounds each request's simulation steps on the Sim
// substrate (default 50M). The concurrent substrates have no step
// notion; bound their requests with Request.Wait contexts.
func WithStepBudget(steps int) Option { return func(o *options) { o.maxSteps = steps } }

// WithCSLength sets how many activations the critical section occupies in
// mutual exclusion clusters (default 2).
func WithCSLength(k int) Option { return func(o *options) { o.csLength = k } }

// WithReceiver installs the application broadcast handler: it runs at
// process proc when a broadcast from process from is accepted and returns
// the feedback value. The default echoes an acknowledgment derived from
// the broadcast and the receiver.
func WithReceiver(f func(proc, from int, b Payload) Payload) Option {
	return func(o *options) { o.onReceive = f }
}

func buildOptions(opts []Option) options {
	o := options{seed: 1, capacity: 1, maxSteps: 50_000_000, csLength: 2, substrate: Sim()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// ErrBudget is returned when a request did not complete within the step
// budget — with correct use that indicates an undersized budget, since
// the protocols terminate from every configuration. Every façade failure
// path wraps it, so errors.Is(err, ErrBudget) works on any request's
// terminal error.
var ErrBudget = errors.New("snapstab: step budget exhausted")

// ErrInvalidProcess is returned (wrapped) by every request submitted at
// a process index outside [0, N).
var ErrInvalidProcess = errors.New("snapstab: invalid process")

// ---------------------------------------------------------------------
// PIF
// ---------------------------------------------------------------------

// PIFCluster is a fully-connected system running Protocol PIF on the
// selected substrate, carrying the structured legacy Payload (Tag, Num).
// It is a thin wrapper over the same payload-level machinery that backs
// TypedPIFCluster: the legacy "codec" maps Payload onto the message's
// structured fields directly (no opaque body), which keeps legacy
// executions — corruption streams included — byte-identical to earlier
// revisions. New applications carrying real data should use
// NewTypedPIFCluster with a Codec.
type PIFCluster struct {
	*pifCore
}

// legacyAck is the default receiver's feedback derivation: an
// acknowledgment tied to both the broadcast and the acknowledging
// process, so value-exact spec checking can predict it.
func legacyAck(q core.ProcID, b core.Payload) core.Payload {
	return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(q)}
}

// NewPIFCluster builds an n-process PIF deployment (n >= 2).
func NewPIFCluster(n int, opts ...Option) *PIFCluster {
	o := buildOptions(opts)
	if o.onReceiveTyped != nil {
		panic("snapstab: WithReceiverT requires NewTypedPIFCluster")
	}
	cfg := pifConfig{
		recv: func(proc, from int, b core.Payload) core.Payload {
			return legacyAck(core.ProcID(proc), b)
		},
		expect: legacyAck,
	}
	if o.onReceive != nil {
		cfg.recv = func(proc, from int, b core.Payload) core.Payload {
			return o.onReceive(proc, from, Payload{Tag: b.Tag, Num: b.Num}).internal()
		}
		// A custom receiver makes the expected feedback unknowable here;
		// SpecReport.ValueChecked reports the weaker verdict explicitly.
		cfg.expect = nil
	}
	return &PIFCluster{pifCore: newPIFCore(n, cfg, o)}
}

// SpecReport is one armed computation's verdict under Specification 1
// (see internal/spec): whether it started, whether it decided, and every
// violation of the Correctness and Decision clauses observed at the
// decision.
type SpecReport struct {
	Started, Decided bool
	// ValueChecked reports whether the Decision clause was compared
	// value-for-value. It is false when a custom receiver (WithReceiver /
	// WithReceiverT) made the expected feedback values unknowable — a
	// clean verdict with ValueChecked == false confirmed the handshake
	// discipline but never compared the decided values.
	ValueChecked bool
	Violations   []string
}

// ArmSpec arms the cluster's Specification 1 checker for the next
// broadcast of (tag, num) initiated at process p. Call it immediately
// before BroadcastAsync(p, tag, num); after the request completes,
// SpecReport returns the verdict. Spec checking runs on the deterministic
// substrate only (the checker judges a single computation at a time and
// is driven by the simulator's event stream); on the concurrent
// substrates it returns an error and the cluster is unaffected.
func (c *PIFCluster) ArmSpec(p int, tag string, num int64) error {
	return c.armSpec(p, core.Payload{Tag: tag, Num: num})
}

// SpecReport returns the armed computation's verdict so far. Zero value
// on the concurrent substrates.
func (c *PIFCluster) SpecReport() SpecReport { return c.specReport() }

// CorruptEverything drives the cluster into an arbitrary initial
// configuration: every protocol variable randomized and — on the
// deterministic substrate — every channel filled with garbage (the
// concurrent substrates start with empty channels, which the model
// permits: their arbitrary state is the machines'). Reproducible from
// the seed.
func (c *PIFCluster) CorruptEverything(seed uint64) { c.corruptEverything(seed) }

// Feedback is one process's acknowledgment.
type Feedback struct {
	// From is the acknowledging process.
	From int
	// Value is the application feedback payload.
	Value Payload
}

// BroadcastRequest is the handle of an asynchronous Broadcast.
type BroadcastRequest struct {
	*Request
	raw *payloadBroadcastRequest

	once sync.Once
	fb   []Feedback
}

// Feedbacks returns the acknowledgments collected from every other
// process, valid after the request completed successfully and nil while
// it is still in flight (reading mid-flight would race the completion
// condition's write). The conversion runs once, on the first call after
// completion, mirroring the typed façade.
func (r *BroadcastRequest) Feedbacks() []Feedback {
	if !r.completed() {
		return nil
	}
	r.once.Do(func() {
		r.fb = make([]Feedback, len(r.raw.fb))
		for i, f := range r.raw.fb {
			r.fb[i] = Feedback{From: f.From, Value: Payload{Tag: f.Value.Tag, Num: f.Value.Num}}
		}
	})
	return r.fb
}

// BroadcastAsync submits a PIF computation request at process p and
// returns immediately. The request is accepted as soon as the machine's
// previous computation (if any — possibly fabricated by corruption) has
// decided; requests issued concurrently at the same process serialize,
// one request owning the process at a time. The guarantee (Theorem 2)
// holds no matter how corrupted the cluster was when the request was
// submitted.
func (c *PIFCluster) BroadcastAsync(p int, tag string, num int64) *BroadcastRequest {
	raw := c.broadcastAsync(p, core.Payload{Tag: tag, Num: num})
	return &BroadcastRequest{Request: raw.Request, raw: raw}
}

// Broadcast requests a PIF computation at process p and runs the cluster
// until the decision, returning the feedback collected from every other
// process.
func (c *PIFCluster) Broadcast(p int, tag string, num int64) ([]Feedback, error) {
	req := c.BroadcastAsync(p, tag, num)
	if err := req.Wait(context.Background()); err != nil {
		return nil, err
	}
	return req.Feedbacks(), nil
}

// ---------------------------------------------------------------------
// IDs-Learning
// ---------------------------------------------------------------------

// IDCluster is a system running Protocol IDL on the selected substrate.
type IDCluster struct {
	clusterCore
	machines []*idl.IDL
	ids      []int64
}

// NewIDCluster builds an n-process IDs-Learning deployment with the given
// distinct identifiers.
func NewIDCluster(ids []int64, opts ...Option) *IDCluster {
	o := buildOptions(opts)
	o.requireCompleteTopology("NewIDCluster")
	n := len(ids)
	c := &IDCluster{ids: append([]int64(nil), ids...)}
	c.machines = make([]*idl.IDL, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		c.machines[i] = idl.New("idl", core.ProcID(i), n, ids[i], capacityBound(o))
		stacks[i] = c.machines[i].Machines()
	}
	c.init(o, stacks)
	return c
}

// CorruptEverything randomizes every variable and, on the deterministic
// substrate, every channel.
func (c *IDCluster) CorruptEverything(seed uint64) {
	c.corrupt(rng.New(seed), config.PIFSpecs("idl/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// LearnRequest is the handle of an asynchronous Learn.
type LearnRequest struct {
	*Request
	minID int64
	table []int64
}

// MinID returns the minimum identifier learned, valid after the request
// completed successfully and zero while it is still in flight.
func (r *LearnRequest) MinID() int64 {
	if !r.completed() {
		return 0
	}
	return r.minID
}

// Table returns the learned identifier table (indexed by process; the
// initiator's own entry is its own identifier), valid after the request
// completed successfully and nil while it is still in flight.
func (r *LearnRequest) Table() []int64 {
	if !r.completed() {
		return nil
	}
	return r.table
}

// LearnAsync submits an IDs-Learning request at process p and returns
// immediately.
func (c *IDCluster) LearnAsync(p int) *LearnRequest {
	req := &LearnRequest{Request: c.newRequest()}
	var machine *idl.IDL
	if p >= 0 && p < len(c.machines) {
		machine = c.machines[p]
	}
	injected := false
	c.start(req.Request, p, "learn", func(env core.Env) bool {
		if !injected {
			injected = machine.Invoke(env)
			return false
		}
		if !machine.Done() {
			return false
		}
		req.minID = machine.MinID
		req.table = append([]int64(nil), machine.IDTab...)
		req.table[p] = machine.ID()
		return true
	}, nil)
	return req
}

// Learn runs an IDs-Learning computation at process p and returns the
// minimum identifier in the system and p's learned identifier table
// (indexed by process; entry p is p's own identifier).
func (c *IDCluster) Learn(p int) (minID int64, table []int64, err error) {
	req := c.LearnAsync(p)
	if err := req.Wait(context.Background()); err != nil {
		return 0, nil, err
	}
	return req.MinID(), req.Table(), nil
}

// ---------------------------------------------------------------------
// Mutual exclusion
// ---------------------------------------------------------------------

// MutexCluster is a system running Protocol ME on the selected substrate.
type MutexCluster struct {
	clusterCore
	machines []*mutex.ME
	chkMu    sync.Mutex // serializes checker access across process goroutines
	checker  *spec.MutexChecker
}

// NewMutexCluster builds an n-process mutual exclusion deployment with the
// given distinct identifiers (the smallest is the leader).
func NewMutexCluster(ids []int64, opts ...Option) *MutexCluster {
	o := buildOptions(opts)
	o.requireCompleteTopology("NewMutexCluster")
	n := len(ids)
	c := &MutexCluster{}
	c.machines = make([]*mutex.ME, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		c.machines[i] = mutex.New("me", core.ProcID(i), n, ids[i],
			mutex.WithCSLength(o.csLength),
			mutex.WithPIFOptions(capacityBound(o)))
		stacks[i] = c.machines[i].Machines()
	}
	c.checker = spec.NewMutexChecker()
	// Events arrive concurrently from every process goroutine on the
	// concurrent substrates; the checker itself is not goroutine-safe.
	locked := core.ObserverFunc(func(e core.Event) {
		c.chkMu.Lock()
		c.checker.OnEvent(e)
		c.chkMu.Unlock()
	})
	c.init(o, stacks, locked)
	return c
}

// CorruptEverything randomizes every variable (and every channel, on the
// deterministic substrate), possibly placing processes inside the
// critical section (the paper's footnote 1).
func (c *MutexCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	c.corruptMachines(r)
	for i, m := range c.machines {
		inCS := false
		c.sub.Do(core.ProcID(i), func(core.Env) { inCS = m.InCS })
		if inCS {
			c.chkMu.Lock()
			c.checker.PrimeZombie(core.ProcID(i))
			c.chkMu.Unlock()
		}
	}
	c.fillChannelGarbage(r, []config.InstanceSpec{
		{Instance: "me/idl/pif", FlagTop: c.machines[0].IDL.PIF.FlagTop()},
		{Instance: "me/pif", FlagTop: c.machines[0].PIF.FlagTop()},
	}, config.Options{})
}

// AcquireAsync submits a critical-section request at process p and
// returns immediately; body (when non-nil) runs inside the critical
// section when the request is served. Safe to issue concurrently from
// many initiators; requests at the same process serialize. The guarantee
// (Theorem 4): every request is served in finite time, exclusively among
// requesting processes.
func (c *MutexCluster) AcquireAsync(p int, body func()) *Request {
	req := c.newRequest()
	var machine *mutex.ME
	if p >= 0 && p < len(c.machines) {
		machine = c.machines[p]
	}
	injected := false
	abort := func(core.Env) {
		// An aborted request (budget, Close) may leave the machine with a
		// pending computation; that is the model's business. Its body is
		// ours: it must never run for a request the caller was told
		// failed.
		if injected {
			machine.CSBody = nil
		}
	}
	c.start(req, p, "acquire", func(env core.Env) bool {
		if !injected {
			if !machine.Invoke(env) {
				return false
			}
			injected = true
			// The machine serves one request at a time, so the body
			// installed here is unambiguously this request's: it is set
			// only after the machine accepted the request, and cleared at
			// its decision, both in p's atomic context.
			machine.CSBody = body
			return false
		}
		if machine.Requested() {
			return false
		}
		machine.CSBody = nil
		return true
	}, abort)
	return req
}

// Acquire requests the critical section at process p, runs the cluster
// until the request is served (critical section entered and exited), and
// executes body inside it.
func (c *MutexCluster) Acquire(p int, body func()) error {
	return c.AcquireAsync(p, body).Wait(context.Background())
}

// AcquireAll submits requests at every listed process concurrently and
// waits until all are served; bodies[i] (when non-nil) runs inside
// process procs[i]'s critical section. Each process may appear at most
// once: a duplicate initiator is rejected up front (the machine serves
// one request per process at a time, so a duplicate could only wait for
// the first to finish — callers wanting that should issue sequential
// AcquireAsync requests instead).
func (c *MutexCluster) AcquireAll(procs []int, bodies []func()) error {
	if bodies != nil && len(bodies) != len(procs) {
		return fmt.Errorf("snapstab: AcquireAll got %d bodies for %d processes", len(bodies), len(procs))
	}
	seen := make(map[int]bool, len(procs))
	for _, p := range procs {
		if p < 0 || p >= len(c.machines) {
			return fmt.Errorf("%w: AcquireAll at %d (cluster has %d)", ErrInvalidProcess, p, len(c.machines))
		}
		if seen[p] {
			return fmt.Errorf("snapstab: AcquireAll got duplicate initiator %d", p)
		}
		seen[p] = true
	}
	reqs := make([]*Request, len(procs))
	for i, p := range procs {
		var body func()
		if bodies != nil {
			body = bodies[i]
		}
		reqs[i] = c.AcquireAsync(p, body)
	}
	for i, req := range reqs {
		if err := req.Wait(context.Background()); err != nil {
			return fmt.Errorf("acquire-all (process %d): %w", procs[i], err)
		}
	}
	return nil
}

// Violations returns the mutual exclusion violations observed so far
// (always empty for correct use; exposed so applications can assert it).
func (c *MutexCluster) Violations() []string {
	c.chkMu.Lock()
	vs := c.checker.Violations()
	c.chkMu.Unlock()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Entries returns the number of served critical-section entries.
func (c *MutexCluster) Entries() int {
	c.chkMu.Lock()
	defer c.chkMu.Unlock()
	return c.checker.Entries()
}
