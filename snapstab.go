// Package snapstab is a Go implementation of the snap-stabilizing
// message-passing protocols of Delaët, Devismes, Nesterenko & Tixeuil,
// "Snap-Stabilization in Message-Passing Systems" (PODC 2008 / INRIA
// RR-6446): Propagation of Information with Feedback (PIF), IDs-Learning,
// and mutual exclusion over fully-connected networks with bounded-capacity
// lossy FIFO channels.
//
// A snap-stabilizing protocol satisfies its specification for every
// request, starting from an ARBITRARY initial configuration — corrupted
// process memories and corrupted channel contents alike. There is no
// convergence period during which requests may be served incorrectly
// (that weaker guarantee is self-stabilization).
//
// This package is the high-level façade: it assembles simulated clusters,
// optionally corrupts them, and exposes one-call request APIs. The
// underlying machines, substrates, checkers, model checker, and adversary
// constructions live in the internal packages and are exercised by
// cmd/snapsim, cmd/snapcheck, cmd/snapbench, and cmd/snapnet.
//
//	cluster := snapstab.NewPIFCluster(5, snapstab.WithLossRate(0.2))
//	cluster.CorruptEverything(42) // adversarial initial configuration
//	fb, err := cluster.Broadcast(0, "hello", 7)
//	// fb holds every other process's acknowledgment of THIS broadcast.
package snapstab

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/mutex"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
)

// Payload is an application datum carried by broadcasts and feedback.
type Payload struct {
	// Tag names the datum.
	Tag string
	// Num is a numeric argument.
	Num int64
}

func (p Payload) internal() core.Payload { return core.Payload{Tag: p.Tag, Num: p.Num} }

// Options configure a cluster.
type options struct {
	lossRate  float64
	seed      uint64
	capacity  int
	maxSteps  int
	csLength  int
	onReceive func(proc int, from int, b Payload) Payload
}

// Option configures a cluster.
type Option func(*options)

// WithLossRate makes links drop in-transit messages with probability p
// (0 <= p < 1).
func WithLossRate(p float64) Option { return func(o *options) { o.lossRate = p } }

// WithSeed seeds the deterministic scheduler (default 1). Two clusters
// built with identical options replay identical executions.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithCapacity sets the known per-channel capacity bound c >= 1 (default
// 1, the paper's setting). The protocols size their handshake flag domain
// to {0..2c+2} automatically.
func WithCapacity(c int) Option { return func(o *options) { o.capacity = c } }

// WithStepBudget bounds each request's simulation steps (default 50M).
func WithStepBudget(steps int) Option { return func(o *options) { o.maxSteps = steps } }

// WithCSLength sets how many activations the critical section occupies in
// mutual exclusion clusters (default 2).
func WithCSLength(k int) Option { return func(o *options) { o.csLength = k } }

// WithReceiver installs the application broadcast handler: it runs at
// process proc when a broadcast from process from is accepted and returns
// the feedback value. The default echoes an acknowledgment derived from
// the broadcast and the receiver.
func WithReceiver(f func(proc, from int, b Payload) Payload) Option {
	return func(o *options) { o.onReceive = f }
}

func buildOptions(opts []Option) options {
	o := options{seed: 1, capacity: 1, maxSteps: 50_000_000, csLength: 2}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// ErrBudget is returned when a request did not complete within the step
// budget — with correct use that indicates an undersized budget, since
// the protocols terminate from every configuration.
var ErrBudget = fmt.Errorf("snapstab: step budget exhausted")

// ---------------------------------------------------------------------
// PIF
// ---------------------------------------------------------------------

// PIFCluster is a simulated fully-connected system running Protocol PIF.
type PIFCluster struct {
	opt      options
	net      *sim.Network
	machines []*pif.PIF
	checker  *spec.PIFChecker
}

// NewPIFCluster builds an n-process PIF deployment (n >= 2).
func NewPIFCluster(n int, opts ...Option) *PIFCluster {
	o := buildOptions(opts)
	c := &PIFCluster{opt: o}
	c.machines = make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		id := core.ProcID(i)
		c.machines[i] = pif.New("pif", id, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, from core.ProcID, b core.Payload) core.Payload {
				if o.onReceive != nil {
					return o.onReceive(int(id), int(from), Payload{Tag: b.Tag, Num: b.Num}).internal()
				}
				return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(id)}
			},
		}, pif.WithCapacityBound(o.capacity))
		stacks[i] = core.Stack{c.machines[i]}
	}
	c.checker = &spec.PIFChecker{N: n, Initiator: 0, Instance: "pif"}
	c.net = sim.New(stacks,
		sim.WithSeed(o.seed),
		sim.WithLossRate(o.lossRate),
		sim.WithCapacity(o.capacity),
		sim.WithObserver(c.checker),
	)
	return c
}

// CorruptEverything drives the cluster into an arbitrary initial
// configuration: every protocol variable randomized, every channel filled
// with garbage. Reproducible from the seed.
func (c *PIFCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	config.Corrupt(c.net, r,
		config.PIFSpecs("pif", c.machines[0].FlagTop()), config.Options{})
}

// Feedback is one process's acknowledgment.
type Feedback struct {
	// From is the acknowledging process.
	From int
	// Value is the application feedback payload.
	Value Payload
}

// Broadcast requests a PIF computation at process p and runs the cluster
// until the decision, returning the feedback collected from every other
// process. The guarantee (Theorem 2) holds no matter how corrupted the
// cluster was when the request was submitted.
func (c *PIFCluster) Broadcast(p int, tag string, num int64) ([]Feedback, error) {
	token := core.Payload{Tag: tag, Num: num}
	machine := c.machines[p]
	feedbacks := make(map[core.ProcID]core.Payload)
	cb := machine.Callbacks()
	cb.OnFeedback = func(_ core.Env, from core.ProcID, f core.Payload) {
		feedbacks[from] = f
	}
	machine.SetCallbacks(cb)

	requested := false
	err := c.net.RunUntil(func() bool {
		if !requested {
			requested = machine.Invoke(c.net.Env(core.ProcID(p)), token)
			return false
		}
		return machine.Done() && machine.BMes == token
	}, c.opt.maxSteps)
	if err != nil {
		return nil, fmt.Errorf("%w: broadcast at %d", ErrBudget, p)
	}
	out := make([]Feedback, 0, len(feedbacks))
	for q := 0; q < c.net.N(); q++ {
		if f, ok := feedbacks[core.ProcID(q)]; ok {
			out = append(out, Feedback{From: q, Value: Payload{Tag: f.Tag, Num: f.Num}})
		}
	}
	return out, nil
}

// N returns the number of processes.
func (c *PIFCluster) N() int { return c.net.N() }

// Stats returns scheduler counters for the whole cluster lifetime.
func (c *PIFCluster) Stats() sim.Stats { return c.net.Stats() }

// ---------------------------------------------------------------------
// IDs-Learning
// ---------------------------------------------------------------------

// IDCluster is a simulated system running Protocol IDL.
type IDCluster struct {
	opt      options
	net      *sim.Network
	machines []*idl.IDL
	ids      []int64
}

// NewIDCluster builds an n-process IDs-Learning deployment with the given
// distinct identifiers.
func NewIDCluster(ids []int64, opts ...Option) *IDCluster {
	o := buildOptions(opts)
	n := len(ids)
	c := &IDCluster{opt: o, ids: append([]int64(nil), ids...)}
	c.machines = make([]*idl.IDL, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		c.machines[i] = idl.New("idl", core.ProcID(i), n, ids[i], pif.WithCapacityBound(o.capacity))
		stacks[i] = c.machines[i].Machines()
	}
	c.net = sim.New(stacks,
		sim.WithSeed(o.seed),
		sim.WithLossRate(o.lossRate),
		sim.WithCapacity(o.capacity),
	)
	return c
}

// CorruptEverything randomizes every variable and channel.
func (c *IDCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	config.Corrupt(c.net, r,
		config.PIFSpecs("idl/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// Learn runs an IDs-Learning computation at process p and returns the
// minimum identifier in the system and p's learned identifier table
// (indexed by process; entry p is p's own identifier).
func (c *IDCluster) Learn(p int) (minID int64, table []int64, err error) {
	machine := c.machines[p]
	requested := false
	runErr := c.net.RunUntil(func() bool {
		if !requested {
			requested = machine.Invoke(c.net.Env(core.ProcID(p)))
			return false
		}
		return machine.Done()
	}, c.opt.maxSteps)
	if runErr != nil {
		return 0, nil, fmt.Errorf("%w: learn at %d", ErrBudget, p)
	}
	table = append([]int64(nil), machine.IDTab...)
	table[p] = machine.ID()
	return machine.MinID, table, nil
}

// ---------------------------------------------------------------------
// Mutual exclusion
// ---------------------------------------------------------------------

// MutexCluster is a simulated system running Protocol ME.
type MutexCluster struct {
	opt      options
	net      *sim.Network
	machines []*mutex.ME
	checker  *spec.MutexChecker
}

// NewMutexCluster builds an n-process mutual exclusion deployment with the
// given distinct identifiers (the smallest is the leader).
func NewMutexCluster(ids []int64, opts ...Option) *MutexCluster {
	o := buildOptions(opts)
	n := len(ids)
	c := &MutexCluster{opt: o}
	c.machines = make([]*mutex.ME, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		c.machines[i] = mutex.New("me", core.ProcID(i), n, ids[i],
			mutex.WithCSLength(o.csLength),
			mutex.WithPIFOptions(pif.WithCapacityBound(o.capacity)))
		stacks[i] = c.machines[i].Machines()
	}
	c.checker = spec.NewMutexChecker()
	c.net = sim.New(stacks,
		sim.WithSeed(o.seed),
		sim.WithLossRate(o.lossRate),
		sim.WithCapacity(o.capacity),
		sim.WithObserver(c.checker),
	)
	return c
}

// CorruptEverything randomizes every variable and channel, possibly
// placing processes inside the critical section (the paper's footnote 1).
func (c *MutexCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	config.CorruptMachines(c.net, r)
	for i, m := range c.machines {
		if m.InCS {
			c.checker.PrimeZombie(core.ProcID(i))
		}
	}
	specs := []config.InstanceSpec{
		{Instance: "me/idl/pif", FlagTop: c.machines[0].IDL.PIF.FlagTop()},
		{Instance: "me/pif", FlagTop: c.machines[0].PIF.FlagTop()},
	}
	config.FillChannels(c.net, r, specs, config.Options{})
}

// Acquire requests the critical section at process p, runs the cluster
// until the request is served (critical section entered and exited), and
// executes body inside it. The guarantee (Theorem 4): the request is
// served in finite time, exclusively among requesting processes.
func (c *MutexCluster) Acquire(p int, body func()) error {
	machine := c.machines[p]
	machine.CSBody = body
	defer func() { machine.CSBody = nil }()
	requested := false
	err := c.net.RunUntil(func() bool {
		if !requested {
			requested = machine.Invoke(c.net.Env(core.ProcID(p)))
			return false
		}
		return !machine.Requested()
	}, c.opt.maxSteps)
	if err != nil {
		return fmt.Errorf("%w: acquire at %d", ErrBudget, p)
	}
	return nil
}

// AcquireAll submits requests at every listed process and runs until all
// are served; bodies[i] (when non-nil) runs inside process procs[i]'s
// critical section.
func (c *MutexCluster) AcquireAll(procs []int, bodies []func()) error {
	requested := make([]bool, len(procs))
	for i, p := range procs {
		if bodies != nil && bodies[i] != nil {
			c.machines[p].CSBody = bodies[i]
		}
	}
	defer func() {
		for _, p := range procs {
			c.machines[p].CSBody = nil
		}
	}()
	err := c.net.RunUntil(func() bool {
		all := true
		for i, p := range procs {
			if !requested[i] {
				requested[i] = c.machines[p].Invoke(c.net.Env(core.ProcID(p)))
			}
			if !requested[i] || c.machines[p].Requested() {
				all = false
			}
		}
		return all
	}, c.opt.maxSteps)
	if err != nil {
		return fmt.Errorf("%w: acquire-all", ErrBudget)
	}
	return nil
}

// Violations returns the mutual exclusion violations observed so far
// (always empty for correct use; exposed so applications can assert it).
func (c *MutexCluster) Violations() []string {
	vs := c.checker.Violations()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Entries returns the number of served critical-section entries.
func (c *MutexCluster) Entries() int { return c.checker.Entries() }
