package snapstab

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// order is the struct payload used across the typed-cluster tests; Data
// gives it bulk (the 4KiB transit cases).
type order struct {
	SKU  string `json:"sku"`
	Qty  int    `json:"qty"`
	Data []byte `json:"data,omitempty"`
}

func bigOrder(size int) order {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*131 + 7)
	}
	return order{SKU: "bulk", Qty: size, Data: data}
}

func typedCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestCodecRoundTrips(t *testing.T) {
	t.Parallel()
	if out, err := Bytes.Unmarshal([]byte{1, 2, 3}); err != nil || !bytes.Equal(out, []byte{1, 2, 3}) {
		t.Fatalf("Bytes round trip: %v %v", out, err)
	}
	if out, err := String.Unmarshal([]byte("hé")); err != nil || out != "hé" {
		t.Fatalf("String round trip: %q %v", out, err)
	}
	c := JSON[order]()
	data, err := c.Marshal(order{SKU: "x", Qty: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Unmarshal(data)
	if err != nil || v.SKU != "x" || v.Qty != 2 {
		t.Fatalf("JSON round trip: %+v %v", v, err)
	}
	if _, err := c.Unmarshal([]byte{0xFF, 0x00, 'g'}); err == nil {
		t.Fatal("JSON codec accepted garbage")
	}
}

// TestBytesCodecCopiesBothWays pins the immutability contract: neither
// the application's view of a received body nor an in-flight broadcast
// blob may alias the other side's memory (a caller mutating its slice
// after BroadcastAsync would otherwise race the process goroutines).
func TestBytesCodecCopiesBothWays(t *testing.T) {
	t.Parallel()
	in := []byte{1, 2, 3}
	out, err := Bytes.Unmarshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 9
	if in[0] != 1 {
		t.Fatal("Unmarshal aliased its input")
	}
	enc, err := Bytes.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	in[1] = 9
	if enc[1] != 2 {
		t.Fatal("Marshal aliased the caller's slice")
	}
}

// TestTypedBroadcastEchoSim: the default receiver echoes the struct
// back; every feedback decodes to the broadcast value, and the armed
// spec checker compares values exactly (ValueChecked).
func TestTypedBroadcastEchoSim(t *testing.T) {
	t.Parallel()
	c := NewTypedPIFCluster(4, JSON[order](), WithSeed(7))
	defer c.Close()
	c.CorruptEverything(42)
	want := order{SKU: "widget", Qty: 3}
	if err := c.ArmSpec(0, want); err != nil {
		t.Fatal(err)
	}
	fb, err := c.Broadcast(0, want)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 3 {
		t.Fatalf("got %d feedbacks, want 3", len(fb))
	}
	for _, f := range fb {
		if f.Err != nil {
			t.Fatalf("feedback from %d undecodable: %v", f.From, f.Err)
		}
		if f.Value.SKU != want.SKU || f.Value.Qty != want.Qty {
			t.Fatalf("feedback from %d = %+v, want echo of %+v", f.From, f.Value, want)
		}
	}
	rep := c.SpecReport()
	if !rep.Started || !rep.Decided || !rep.ValueChecked {
		t.Fatalf("spec report %+v: want started, decided, value-checked", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("specification 1 violated: %v", rep.Violations)
	}
}

// TestTypedCustomReceiver: WithReceiverT transforms the value; the spec
// verdict must admit it never compared values (ValueChecked false).
func TestTypedCustomReceiver(t *testing.T) {
	t.Parallel()
	c := NewTypedPIFCluster(3, JSON[order](), WithSeed(3),
		WithReceiverT(func(proc, from int, b order) order {
			b.Qty += proc * 100
			return b
		}))
	defer c.Close()
	if err := c.ArmSpec(0, order{SKU: "s", Qty: 1}); err != nil {
		t.Fatal(err)
	}
	fb, err := c.Broadcast(0, order{SKU: "s", Qty: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fb {
		if f.Err != nil {
			t.Fatalf("feedback from %d undecodable: %v", f.From, f.Err)
		}
		if f.Value.Qty != 1+f.From*100 {
			t.Fatalf("feedback from %d = %+v, want Qty %d", f.From, f.Value, 1+f.From*100)
		}
	}
	rep := c.SpecReport()
	if !rep.Decided || rep.ValueChecked {
		t.Fatalf("spec report %+v: custom receiver must report ValueChecked=false", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestLegacySpecReportValueChecked pins the ArmSpec satellite on the
// legacy cluster: the default receiver checks values, a custom receiver
// must say it did not.
func TestLegacySpecReportValueChecked(t *testing.T) {
	t.Parallel()
	def := NewPIFCluster(3, WithSeed(1))
	defer def.Close()
	if err := def.ArmSpec(0, "x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := def.Broadcast(0, "x", 1); err != nil {
		t.Fatal(err)
	}
	if rep := def.SpecReport(); !rep.ValueChecked || !rep.Decided {
		t.Fatalf("default receiver report %+v: want ValueChecked=true", rep)
	}

	custom := NewPIFCluster(3, WithSeed(1), WithReceiver(func(proc, from int, b Payload) Payload {
		return Payload{Tag: "custom", Num: int64(proc)}
	}))
	defer custom.Close()
	if err := custom.ArmSpec(0, "x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := custom.Broadcast(0, "x", 1); err != nil {
		t.Fatal(err)
	}
	rep := custom.SpecReport()
	if rep.ValueChecked {
		t.Fatalf("custom receiver report %+v: claims value-exact checking it never did", rep)
	}
	if !rep.Decided || len(rep.Violations) != 0 {
		t.Fatalf("custom receiver report %+v: handshake clauses must still be judged", rep)
	}
}

// blobRecorder captures every accepted broadcast body per process, for
// the cross-substrate transit assertions. Handlers run on process
// goroutines on the concurrent substrates, hence the lock.
type blobRecorder struct {
	mu   sync.Mutex
	seen map[int][][]byte // proc -> marshaled bodies accepted
}

func newBlobRecorder() *blobRecorder { return &blobRecorder{seen: make(map[int][][]byte)} }

func (r *blobRecorder) record(proc int, data []byte) {
	r.mu.Lock()
	r.seen[proc] = append(r.seen[proc], data)
	r.mu.Unlock()
}

// sawExactly reports whether process proc accepted a body byte-identical
// to want.
func (r *blobRecorder) sawExactly(proc int, want []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.seen[proc] {
		if bytes.Equal(b, want) {
			return true
		}
	}
	return false
}

// TestTypedBlobTransitAllSubstrates broadcasts a 4KiB JSON payload on
// Sim, Runtime, and UDP and asserts it decodes byte-identical at every
// receiver and in every decided feedback — the opaque body crosses the
// in-memory channels, the goroutine fan-in, and real wire-encoded UDP
// datagrams unchanged.
func TestTypedBlobTransitAllSubstrates(t *testing.T) {
	t.Parallel()
	want := bigOrder(4096)
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		s    Substrate
	}{
		{"sim", Sim()},
		{"runtime", Runtime()},
		{"udp", UDP()},
	} {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			t.Parallel()
			const n = 3
			rec := newBlobRecorder()
			c := NewTypedPIFCluster(n, JSON[order](), WithSubstrate(sub.s), WithSeed(11),
				WithReceiverT(func(proc, from int, b order) order {
					data, err := json.Marshal(b)
					if err == nil {
						rec.record(proc, data)
					}
					return b // echo
				}))
			defer c.Close()
			c.CorruptEverything(99)
			req := c.BroadcastAsync(0, want)
			if err := req.Wait(typedCtx(t)); err != nil {
				t.Fatal(err)
			}
			fb := req.Feedbacks()
			if len(fb) != n-1 {
				t.Fatalf("got %d feedbacks, want %d", len(fb), n-1)
			}
			for _, f := range fb {
				if f.Err != nil {
					t.Fatalf("feedback from %d undecodable: %v", f.From, f.Err)
				}
				got, err := json.Marshal(f.Value)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, wantBytes) {
					t.Fatalf("feedback from %d differs from broadcast (%d vs %d bytes)", f.From, len(got), len(wantBytes))
				}
			}
			for q := 1; q < n; q++ {
				if !rec.sawExactly(q, wantBytes) {
					t.Fatalf("process %d never accepted the byte-identical 4KiB payload", q)
				}
			}
		})
	}
}

// TestTypedBlobTransitCorruptThenReset runs the snapchaos
// corrupt-then-reset shape on the deterministic substrate — corrupted
// initial configuration plus heavy in-flight payload corruption that
// garbles blobs — and asserts the 4KiB payload still decodes
// byte-identical at every receiver and in the decision. This is
// Theorem 2 with the opaque body as the value under test.
func TestTypedBlobTransitCorruptThenReset(t *testing.T) {
	t.Parallel()
	want := bigOrder(4096)
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	rec := newBlobRecorder()
	c := NewTypedPIFCluster(n, JSON[order](), WithSeed(5),
		WithFaults(FaultPlan{
			Seed:    2024,
			Default: LinkFaults{CorruptRate: 0.25, DropRate: 0.05},
		}),
		WithReceiverT(func(proc, from int, b order) order {
			if data, err := json.Marshal(b); err == nil {
				rec.record(proc, data)
			}
			return b
		}))
	defer c.Close()
	c.CorruptEverything(7 * 2024)
	for round := 0; round < 2; round++ {
		req := c.BroadcastAsync(0, want)
		if err := req.Wait(typedCtx(t)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fb := req.Feedbacks()
		if len(fb) != n-1 {
			t.Fatalf("round %d: got %d feedbacks, want %d", round, len(fb), n-1)
		}
		for _, f := range fb {
			if f.Err != nil {
				t.Fatalf("round %d: feedback from %d undecodable: %v", round, f.From, f.Err)
			}
			got, err := json.Marshal(f.Value)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Fatalf("round %d: feedback from %d not byte-identical", round, f.From)
			}
		}
	}
	for q := 1; q < n; q++ {
		if !rec.sawExactly(q, wantBytes) {
			t.Fatalf("process %d never accepted the byte-identical payload under corruption", q)
		}
	}
	if faults := c.FaultStats(); faults.Corrupts == 0 {
		t.Fatalf("scenario injected no payload corruption: %+v — the test proved nothing", faults)
	}
}

// TestTypedMarshalFailureFailsRequest: a value the codec rejects fails
// the request up front without touching the machines.
func TestTypedMarshalFailureFailsRequest(t *testing.T) {
	t.Parallel()
	c := NewTypedPIFCluster(2, JSON[chan int]())
	defer c.Close()
	req := c.BroadcastAsync(0, make(chan int))
	if err := req.Wait(typedCtx(t)); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}

// TestTypedConstructorValidation pins the misuse panics.
func TestTypedConstructorValidation(t *testing.T) {
	t.Parallel()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("nil codec", func() { NewTypedPIFCluster[string](2, nil) })
	expectPanic("legacy receiver on typed cluster", func() {
		NewTypedPIFCluster(2, String, WithReceiver(func(_, _ int, b Payload) Payload { return b }))
	})
	expectPanic("typed receiver on legacy cluster", func() {
		NewPIFCluster(2, WithReceiverT(func(_, _ int, b string) string { return b }))
	})
	expectPanic("type-mismatched typed receiver", func() {
		NewTypedPIFCluster(2, String, WithReceiverT(func(_, _ int, b int) int { return b }))
	})
}

// TestErrorsIsThroughWrapPaths pins the sentinel contract on every
// façade wrap path: budget exhaustion, cluster close, invalid process,
// partial reset acknowledgment, and remote-process requests all answer
// errors.Is through whatever wrapping the request plumbing applied.
func TestErrorsIsThroughWrapPaths(t *testing.T) {
	t.Parallel()

	t.Run("budget", func(t *testing.T) {
		t.Parallel()
		c := NewPIFCluster(3, WithStepBudget(10))
		defer c.Close()
		c.CorruptEverything(1)
		_, err := c.Broadcast(0, "x", 1)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("got %v, want errors.Is ErrBudget", err)
		}
		tc := NewTypedPIFCluster(3, String, WithStepBudget(10))
		defer tc.Close()
		if _, err := tc.Broadcast(0, "hello"); !errors.Is(err, ErrBudget) {
			t.Fatalf("typed: got %v, want errors.Is ErrBudget", err)
		}
	})

	t.Run("closed", func(t *testing.T) {
		t.Parallel()
		c := NewPIFCluster(3)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		_, err := c.Broadcast(0, "x", 1)
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want errors.Is ErrClosed", err)
		}
	})

	t.Run("invalid-process", func(t *testing.T) {
		t.Parallel()
		c := NewPIFCluster(3)
		defer c.Close()
		if _, err := c.Broadcast(9, "x", 1); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("broadcast: got %v, want errors.Is ErrInvalidProcess", err)
		}
		if err := c.ArmSpec(-1, "x", 1); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("armspec: got %v, want errors.Is ErrInvalidProcess", err)
		}
		ids := []int64{3, 1, 2}
		idc := NewIDCluster(ids)
		defer idc.Close()
		if _, _, err := idc.Learn(-2); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("learn: got %v, want errors.Is ErrInvalidProcess", err)
		}
		mc := NewMutexCluster(ids)
		defer mc.Close()
		if err := mc.Acquire(17, nil); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("acquire: got %v, want errors.Is ErrInvalidProcess", err)
		}
		if err := mc.AcquireAll([]int{0, 99}, nil); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("acquire-all: got %v, want errors.Is ErrInvalidProcess", err)
		}
		tc := NewTypedPIFCluster(3, String)
		defer tc.Close()
		if _, err := tc.Broadcast(5, "v"); !errors.Is(err, ErrInvalidProcess) {
			t.Fatalf("typed broadcast: got %v, want errors.Is ErrInvalidProcess", err)
		}
	})

	t.Run("partial-ack", func(t *testing.T) {
		t.Parallel()
		// ErrPartialAck needs an adversary beyond the channel model: the
		// fault plane's CorruptRate can forge the final handshake echo,
		// completing the child PIF on a value that was never a real
		// acknowledgment. The deterministic substrate replays the whole
		// run from (seed, plan), so a short seed sweep reproduces the
		// outcome reliably; the sentinel must answer errors.Is through
		// the double wrap ("reset at p: ... of epoch e").
		hit := false
		for seed := uint64(1); seed <= 40 && !hit; seed++ {
			c := NewResetCluster(3, nil,
				WithSeed(seed),
				WithFaults(FaultPlan{Seed: seed * 7, Default: LinkFaults{CorruptRate: 0.8}}))
			_, err := c.Reset(0)
			if err != nil && !errors.Is(err, ErrPartialAck) {
				c.Close()
				t.Fatalf("seed %d: got %v, want nil or errors.Is ErrPartialAck", seed, err)
			}
			hit = errors.Is(err, ErrPartialAck)
			c.Close()
		}
		if !hit {
			t.Fatal("no seed in the sweep produced ErrPartialAck; the corruption stream changed, widen or repin the sweep")
		}
	})

	t.Run("remote-process", func(t *testing.T) {
		t.Parallel()
		// A TCPHost daemon owns exactly one process; requests addressed
		// to a peer's process fail loudly before any traffic, on both
		// the legacy and the typed request paths.
		const n = 2
		addrs := make([]string, n)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs[i] = ln.Addr().String()
			ln.Close()
		}
		fleet := func(self int) Option {
			return WithSubstrate(TCPHost(TCPFleet{Self: self, Listen: addrs[self], Peers: addrs}))
		}
		c0 := NewPIFCluster(n, fleet(0), WithSeed(7))
		defer c0.Close()
		if _, err := c0.Broadcast(1, "misplaced", 1); !errors.Is(err, ErrRemoteProcess) {
			t.Fatalf("legacy remote broadcast: got %v, want errors.Is ErrRemoteProcess", err)
		}
		c1 := NewTypedPIFCluster(n, String, fleet(1), WithSeed(7))
		defer c1.Close()
		if _, err := c1.Broadcast(0, "misplaced"); !errors.Is(err, ErrRemoteProcess) {
			t.Fatalf("typed remote broadcast: got %v, want errors.Is ErrRemoteProcess", err)
		}
	})
}

// TestTypedStringAndBytesClusters smoke-tests the two built-in
// non-JSON codecs end to end on the default substrate.
func TestTypedStringAndBytesClusters(t *testing.T) {
	t.Parallel()
	sc := NewTypedPIFCluster(3, String, WithSeed(2))
	defer sc.Close()
	fb, err := sc.Broadcast(1, "payload-π")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fb {
		if f.Err != nil || f.Value != "payload-π" {
			t.Fatalf("string echo from %d: %q %v", f.From, f.Value, f.Err)
		}
	}
	bc := NewTypedPIFCluster(3, Bytes, WithSeed(2))
	defer bc.Close()
	blob := []byte{0, 1, 2, 254, 255}
	bfb, err := bc.Broadcast(2, blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range bfb {
		if f.Err != nil || !bytes.Equal(f.Value, blob) {
			t.Fatalf("bytes echo from %d: %x %v", f.From, f.Value, f.Err)
		}
	}
}

// TestTypedOversizedPayloadFailsFast: a marshaled body beyond the wire
// limit must fail the request up front with an error — on UDP it would
// otherwise be silently dropped at every send and the blocking request
// would wait forever.
func TestTypedOversizedPayloadFailsFast(t *testing.T) {
	t.Parallel()
	c := NewTypedPIFCluster(2, Bytes)
	defer c.Close()
	req := c.BroadcastAsync(0, make([]byte, 20_000))
	if err := req.Wait(typedCtx(t)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := c.ArmSpec(0, make([]byte, 20_000)); err == nil {
		t.Fatal("ArmSpec accepted an oversized payload")
	}
}

// TestFeedbacksBeforeCompletion: reading feedbacks mid-flight returns
// nil without latching — the post-completion read still sees the real
// acknowledgments (both façades).
func TestFeedbacksBeforeCompletion(t *testing.T) {
	t.Parallel()
	tc := NewTypedPIFCluster(3, String, WithSubstrate(Runtime()))
	defer tc.Close()
	req := tc.BroadcastAsync(0, "v")
	_ = req.Feedbacks() // likely in flight: must not latch empty
	if err := req.Wait(typedCtx(t)); err != nil {
		t.Fatal(err)
	}
	if fb := req.Feedbacks(); len(fb) != 2 {
		t.Fatalf("post-completion Feedbacks = %d entries, want 2 (premature read latched)", len(fb))
	}

	lc := NewPIFCluster(3, WithSubstrate(Runtime()))
	defer lc.Close()
	lreq := lc.BroadcastAsync(0, "x", 1)
	_ = lreq.Feedbacks()
	if err := lreq.Wait(typedCtx(t)); err != nil {
		t.Fatal(err)
	}
	if fb := lreq.Feedbacks(); len(fb) != 2 {
		t.Fatalf("legacy post-completion Feedbacks = %d entries, want 2", len(fb))
	}
}

// TestFeedbacksSurfaceMarkerPayloads pins the TypedFeedback.Err
// contract under codecs whose Unmarshal never fails: a feedback that is
// not tagged as an application payload (a receiver's undecodable /
// unencodable marker, or accepted corruption garbage) must surface as
// Err, never as a fabricated zero value.
func TestFeedbacksSurfaceMarkerPayloads(t *testing.T) {
	t.Parallel()
	c := NewTypedPIFCluster(2, Bytes)
	defer c.Close()
	done := make(chan struct{})
	close(done)
	req := &TypedBroadcastRequest[[]byte]{
		Request: &Request{done: done},
		c:       c,
		raw: &payloadBroadcastRequest{fb: []rawFeedback{
			{From: 1, Value: core.Payload{Tag: "undecodable"}},
			{From: 2, Value: core.Payload{Tag: "app", Blob: []byte{7}}},
		}},
	}
	fb := req.Feedbacks()
	if fb[0].Err == nil {
		t.Fatal("marker feedback surfaced with a nil Err and a fabricated value")
	}
	if fb[1].Err != nil || !bytes.Equal(fb[1].Value, []byte{7}) {
		t.Fatalf("genuine feedback mangled: %v %v", fb[1].Value, fb[1].Err)
	}
}

// TestCustomReceiverNeverSeesGarbage pins the WithReceiverT contract
// under never-failing codecs: corruption garbage (untagged payloads)
// must answer with the marker, not invoke the handler with fabricated
// bytes.
func TestCustomReceiverNeverSeesGarbage(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var got [][]byte
	c := NewTypedPIFCluster(3, Bytes, WithSeed(21),
		WithReceiverT(func(proc, from int, b []byte) []byte {
			mu.Lock()
			got = append(got, append([]byte(nil), b...))
			mu.Unlock()
			return b
		}))
	defer c.Close()
	c.CorruptEverything(63) // garbage machine state and channels, bodies included
	want := []byte("genuine-application-bytes")
	fb, err := c.Broadcast(0, want)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fb {
		if f.Err != nil || !bytes.Equal(f.Value, want) {
			t.Fatalf("feedback from %d: %q %v", f.From, f.Value, f.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, b := range got {
		if !bytes.Equal(b, want) {
			t.Fatalf("handler invoked with fabricated bytes %q (corruption garbage leaked through)", b)
		}
	}
}
