package snapstab

import (
	"context"
	"fmt"
	"sync"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/wire"
)

// typedTag marks payloads produced by a typed cluster's codec, so traces
// distinguish application bodies from corruption garbage.
const typedTag = "app"

// typedGarbageBlob is how many opaque garbage bytes (at most, per
// payload) CorruptEverything draws for typed clusters, exercising the
// codec's rejection path from the arbitrary initial configuration.
const typedGarbageBlob = 64

// TypedPIFCluster is a fully-connected system running Protocol PIF on
// the selected substrate, carrying application values of type T through
// the codec's opaque payload bodies. The snap-stabilization guarantee is
// unchanged: every broadcast request decides on feedback produced for
// that very computation, from ANY initial configuration — what travels
// in the messages is now the application's own type.
//
//	type Order struct{ SKU string; Qty int }
//	c := snapstab.NewTypedPIFCluster(5, snapstab.JSON[Order]())
//	defer c.Close()
//	c.CorruptEverything(42)
//	fb, err := c.Broadcast(0, Order{SKU: "widget", Qty: 3})
//
// The default receiver echoes the broadcast value back, which keeps the
// Specification 1 Decision clause value-checkable; install application
// logic with WithReceiverT.
type TypedPIFCluster[T any] struct {
	*pifCore
	codec Codec[T]
}

// WithReceiverT installs the typed application broadcast handler: it
// runs at process proc when a broadcast from process from is accepted
// and returns the feedback value, both marshaled through the cluster's
// codec. Only valid with NewTypedPIFCluster over the same T (the
// constructor panics otherwise). Under payload corruption a receiver may
// be handed garbage the codec rejects; the machine then answers with an
// explicitly tagged undecodable marker instead of invoking f with a
// fabricated value.
func WithReceiverT[T any](f func(proc, from int, b T) T) Option {
	return func(o *options) { o.onReceiveTyped = f }
}

// NewTypedPIFCluster builds an n-process PIF deployment (n >= 2)
// carrying T-typed payloads through codec.
func NewTypedPIFCluster[T any](n int, codec Codec[T], opts ...Option) *TypedPIFCluster[T] {
	if codec == nil {
		panic("snapstab: NewTypedPIFCluster requires a codec")
	}
	o := buildOptions(opts)
	if o.onReceive != nil {
		panic("snapstab: WithReceiver carries legacy payloads; use WithReceiverT with typed clusters")
	}
	cfg := pifConfig{garbageBlob: typedGarbageBlob}
	if o.onReceiveTyped == nil {
		// Echo receiver: feedback is the broadcast payload verbatim, so
		// the expected value at every process is the token itself and the
		// Decision clause stays value-exact. A body beyond the wire bound
		// (only corruption could fabricate one) must not be echoed into
		// the feedback — it would fail encoding at every UDP send — so it
		// degrades to the unencodable marker instead.
		cfg.recv = func(proc, from int, b core.Payload) core.Payload {
			if len(b.Blob) > wire.MaxBlobLen {
				return core.Payload{Tag: "unencodable"}
			}
			return b
		}
		cfg.expect = func(q core.ProcID, b core.Payload) core.Payload { return b }
	} else {
		f, ok := o.onReceiveTyped.(func(proc, from int, b T) T)
		if !ok {
			panic(fmt.Sprintf("snapstab: WithReceiverT handler %T does not match cluster payload type", o.onReceiveTyped))
		}
		cfg.recv = func(proc, from int, b core.Payload) core.Payload {
			if b.Tag != typedTag {
				// Not an application payload at all (corruption garbage,
				// garbage machine state): answer with the marker without
				// consulting the codec — under never-failing codecs
				// (Bytes, String) Unmarshal alone cannot tell.
				return core.Payload{Tag: "undecodable"}
			}
			v, err := codec.Unmarshal(b.Blob)
			if err != nil {
				// A tagged body the codec rejects (garbled in flight):
				// answer neutrally and recognizably rather than fabricate
				// a T.
				return core.Payload{Tag: "undecodable"}
			}
			out, err := codec.Marshal(f(proc, from, v))
			if err != nil || len(out) > wire.MaxBlobLen {
				// An unencodable (or wire-oversized, which UDP could never
				// carry) feedback must not poison the handshake: answer
				// with the recognizable marker and let the initiator's
				// TypedFeedback.Err surface it.
				return core.Payload{Tag: "unencodable"}
			}
			return core.Payload{Tag: typedTag, Blob: out}
		}
	}
	return &TypedPIFCluster[T]{pifCore: newPIFCore(n, cfg, o), codec: codec}
}

// encode marshals v into the wire payload. Bodies are bounded by the
// wire format's MaxBlobLen even on the in-memory substrates: an
// oversized body on UDP would fail encoding at every send — silent
// per-datagram drops the blocking request waits out forever — so the
// bound is enforced up front, uniformly, where the caller gets an
// error.
func (c *TypedPIFCluster[T]) encode(v T) (core.Payload, error) {
	data, err := c.codec.Marshal(v)
	if err != nil {
		return core.Payload{}, fmt.Errorf("snapstab: marshal broadcast payload: %w", err)
	}
	if len(data) > wire.MaxBlobLen {
		return core.Payload{}, fmt.Errorf("snapstab: marshaled payload of %d bytes exceeds the %d-byte wire limit", len(data), wire.MaxBlobLen)
	}
	return core.Payload{Tag: typedTag, Blob: data}, nil
}

// CorruptEverything drives the cluster into an arbitrary initial
// configuration — machine variables AND (on the deterministic substrate)
// channels full of garbage carrying random opaque bodies, so the codec's
// rejection path is part of what snap-stabilization is tested against.
func (c *TypedPIFCluster[T]) CorruptEverything(seed uint64) { c.corruptEverything(seed) }

// ArmSpec arms the cluster's Specification 1 checker for the next
// broadcast of v initiated at process p (Sim substrate only; see
// PIFCluster.ArmSpec). With the default echo receiver the Decision
// clause is checked value-for-value against the marshaled bytes;
// SpecReport.ValueChecked reports whether that comparison ran.
func (c *TypedPIFCluster[T]) ArmSpec(p int, v T) error {
	token, err := c.encode(v)
	if err != nil {
		return err
	}
	return c.armSpec(p, token)
}

// SpecReport returns the armed computation's verdict so far. Zero value
// on the concurrent substrates.
func (c *TypedPIFCluster[T]) SpecReport() SpecReport { return c.specReport() }

// TypedFeedback is one process's acknowledgment, decoded through the
// cluster's codec.
type TypedFeedback[T any] struct {
	// From is the acknowledging process.
	From int
	// Value is the decoded feedback; meaningful only when Err is nil.
	Value T
	// Err reports a feedback that was not a decodable application
	// payload: a body the codec rejected, a receiver's undecodable /
	// unencodable marker, or corruption garbage accepted into the
	// handshake. Under payload corruption an accepted acknowledgment can
	// carry garbage — the adversarial case the paper's model admits —
	// and a typed API must surface it rather than hand the application a
	// zero T, even under codecs whose Unmarshal never fails.
	Err error
}

// TypedBroadcastRequest is the handle of an asynchronous typed
// Broadcast.
type TypedBroadcastRequest[T any] struct {
	*Request
	c   *TypedPIFCluster[T]
	raw *payloadBroadcastRequest

	once sync.Once
	fb   []TypedFeedback[T]
}

// Feedbacks returns the acknowledgments collected from every other
// process, decoded through the cluster's codec; valid after the request
// completed successfully, nil while it is still in flight. The decode
// runs once, on the first call after completion (an in-flight call must
// neither latch an empty result nor race the completion condition's
// write of the raw feedback).
func (r *TypedBroadcastRequest[T]) Feedbacks() []TypedFeedback[T] {
	if !r.completed() {
		return nil
	}
	r.once.Do(func() {
		r.fb = make([]TypedFeedback[T], len(r.raw.fb))
		for i, f := range r.raw.fb {
			// A payload not tagged as an application body is adversarial
			// residue: a receiver's undecodable/unencodable marker, or
			// corruption garbage accepted into the handshake. It must
			// surface as Err even under codecs whose Unmarshal never
			// fails (Bytes, String) — a fabricated zero value with a nil
			// Err is exactly what this API promises not to produce.
			if f.Value.Tag != typedTag {
				r.fb[i] = TypedFeedback[T]{From: f.From,
					Err: fmt.Errorf("snapstab: feedback from %d is %q, not an application payload", f.From, f.Value.Tag)}
				continue
			}
			v, err := r.c.codec.Unmarshal(f.Value.Blob)
			r.fb[i] = TypedFeedback[T]{From: f.From, Value: v, Err: err}
		}
	})
	return r.fb
}

// BroadcastAsync submits a PIF computation request for value v at
// process p and returns immediately; see PIFCluster.BroadcastAsync for
// the request semantics. A value the codec cannot marshal fails the
// request up front.
func (c *TypedPIFCluster[T]) BroadcastAsync(p int, v T) *TypedBroadcastRequest[T] {
	token, err := c.encode(v)
	if err != nil {
		req := &TypedBroadcastRequest[T]{Request: c.newRequest(), c: c, raw: &payloadBroadcastRequest{}}
		req.err = err
		close(req.done)
		return req
	}
	raw := c.broadcastAsync(p, token)
	return &TypedBroadcastRequest[T]{Request: raw.Request, c: c, raw: raw}
}

// Broadcast requests a PIF computation for value v at process p and runs
// the cluster until the decision, returning the decoded feedback
// collected from every other process.
func (c *TypedPIFCluster[T]) Broadcast(p int, v T) ([]TypedFeedback[T], error) {
	req := c.BroadcastAsync(p, v)
	if err := req.Wait(context.Background()); err != nil {
		return nil, err
	}
	return req.Feedbacks(), nil
}
