package snapstab

import (
	"encoding/json"
	"fmt"
)

// Codec marshals application values of type T into the opaque payload
// body the protocols propagate, and back. The snap-stabilizing machines
// never inspect the bytes — like the message-switched forwarding model,
// the carried datum is opaque application data — so any serialization
// works, and the guarantees (every request served from an arbitrary
// initial configuration) are codec-independent.
//
// A codec must be deterministic for the cluster's value-exact checks:
// Marshal(v) must always produce the same bytes for the same value
// during one request's lifetime. Unmarshal must tolerate arbitrary
// input — under payload corruption (WithFaults' CorruptRate, or a
// corrupted initial configuration) it will be handed garbage, and must
// return an error rather than panic.
type Codec[T any] interface {
	// Marshal serializes v into an opaque body.
	Marshal(v T) ([]byte, error)
	// Unmarshal parses a body produced by Marshal (or adversarial
	// garbage, which it must reject with an error, not a panic).
	Unmarshal(data []byte) (T, error)
}

// Bytes is the identity codec: the application value IS the body. Every
// byte slice unmarshals successfully, so under payload corruption the
// receiver sees the garbled bytes rather than a decode error — the
// rawest adversarial surface.
var Bytes Codec[[]byte] = bytesCodec{}

type bytesCodec struct{}

// Marshal and Unmarshal both copy: blob backing arrays are shared with
// in-flight messages and must stay immutable, so neither side may alias
// application-owned memory (a caller mutating its slice after
// BroadcastAsync would otherwise race the process goroutines).
func (bytesCodec) Marshal(v []byte) ([]byte, error) {
	if len(v) == 0 {
		return nil, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

func (bytesCodec) Unmarshal(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// String is the UTF-8 string codec.
var String Codec[string] = stringCodec{}

type stringCodec struct{}

func (stringCodec) Marshal(v string) ([]byte, error)      { return []byte(v), nil }
func (stringCodec) Unmarshal(data []byte) (string, error) { return string(data), nil }

// JSON returns a codec marshaling T through encoding/json: the
// zero-dependency way to carry struct payloads. Corrupted bodies fail
// Unmarshal with a JSON syntax error and are surfaced per feedback (see
// TypedFeedback.Err) instead of crashing the cluster.
func JSON[T any]() Codec[T] { return jsonCodec[T]{} }

type jsonCodec[T any] struct{}

func (jsonCodec[T]) Marshal(v T) ([]byte, error) { return json.Marshal(v) }
func (jsonCodec[T]) Unmarshal(data []byte) (T, error) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("snapstab: json payload: %w", err)
	}
	return v, nil
}
