#!/bin/sh
# fleet-smoke.sh — the deployment plane's acceptance scenario as a
# script: a 5-node snapd fleet on localhost completes a typed broadcast
# and a tree forward via snapctl, survives a kill-and-restart of one
# daemon, and exposes nonzero per-link throughput and latency-histogram
# metrics on every node. Run from the repository root; exits nonzero on
# the first failed check.
set -eu

N=5
BASE_PORT="${BASE_PORT:-9100}"
CTRL_PORT="${CTRL_PORT:-8100}"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
mkdir -p "$BIN"
export PATH="$BIN:$PATH"

fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "fleet-smoke: $*"; }

cleanup() {
  for d in "$WORK/typed" "$WORK/forward"; do
    [ -x "$d/down.sh" ] && "$d/down.sh" >/dev/null 2>&1 || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

note "building snapd, snapctl, fleetgen"
go build -o "$BIN/snapd" ./cmd/snapd
go build -o "$BIN/snapctl" ./cmd/snapctl
go build -o "$BIN/fleetgen" ./cmd/fleetgen

# ---------------------------------------------------------------- typed
note "generating and launching a $N-node typed fleet (corrupted start)"
fleetgen -n "$N" -protocol typed -corrupt -seed 7 \
  -base-port "$BASE_PORT" -control-port "$CTRL_PORT" \
  -out "$WORK/typed" -mode shell >/dev/null
"$WORK/typed/up.sh"

note "typed broadcast through node 0"
out="$(snapctl -addr "127.0.0.1:$CTRL_PORT" broadcast -value '{"smoke":1}')"
echo "$out" | grep -q '"event":"done"' || fail "typed broadcast did not complete: $out"
echo "$out" | grep -q '"smoke":1' || fail "feedbacks did not echo the document: $out"

note "killing node 2's daemon hard and restarting it"
kill -9 "$(cat "$WORK/typed/pids/node-2.pid")"
sleep 0.3
snapd -config "$WORK/typed/node-2.json" >"$WORK/typed/logs/node-2.restart.log" 2>&1 &
echo $! >"$WORK/typed/pids/node-2.pid"
tries=0
until snapctl -addr "127.0.0.1:$((CTRL_PORT + 2))" status >/dev/null 2>&1; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "restarted node 2 never answered"
  sleep 0.1
done

note "typed broadcast after the restart"
out="$(snapctl -addr "127.0.0.1:$CTRL_PORT" broadcast -value '{"smoke":2}')"
echo "$out" | grep -q '"event":"done"' || fail "post-restart broadcast did not complete: $out"

note "checking /metrics on every node"
i=0
while [ "$i" -lt "$N" ]; do
  m="$(snapctl -addr "127.0.0.1:$((CTRL_PORT + i))" metrics)"
  echo "$m" | grep -q 'snapstab_link_sent_total{peer=' \
    || fail "node $i exposes no per-link throughput"
  echo "$m" | grep 'snapstab_request_duration_seconds_count' | grep -vq ' 0$' \
    || fail "node $i has an empty latency histogram"
  echo "$m" | grep -q 'snapstab_transport_sends_total' \
    || fail "node $i exposes no transport counters"
  i=$((i + 1))
done
"$WORK/typed/down.sh" >/dev/null

# -------------------------------------------------------------- forward
note "generating and launching a $N-node forward fleet (line topology)"
fleetgen -n "$N" -protocol forward -corrupt -seed 7 \
  -base-port "$BASE_PORT" -control-port "$CTRL_PORT" \
  -out "$WORK/forward" -mode shell >/dev/null
"$WORK/forward/up.sh"

last=$((N - 1))
note "forwarding a document from node 0 to node $last"
out="$(snapctl -addr "127.0.0.1:$CTRL_PORT" forward -dst "$last" -value '"smoke-item"')"
echo "$out" | grep -q '"event":"done"' || fail "forward did not complete: $out"

note "polling node $last for the delivery"
tries=0
until snapctl -addr "127.0.0.1:$((CTRL_PORT + last))" deliveries | grep -q 'smoke-item'; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "node $last never delivered the item"
  sleep 0.1
done
"$WORK/forward/down.sh" >/dev/null

note "PASS"
