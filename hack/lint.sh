#!/usr/bin/env bash
# lint.sh — the repository's single lint entry point.
#
# Run it before pushing; CI's lint job executes this exact script, so a
# clean local run is a clean CI lint job. Order is cheapest-first:
# formatting, go vet, then the snapvet analyzer suite (which itself
# finishes with vet's copylocks and atomic passes over the tree).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed:"
  echo "$unformatted"
  exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> snapvet"
go run ./cmd/snapvet ./...

echo "lint OK"
